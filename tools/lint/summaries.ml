(* Function-level facts for the interprocedural rules (R7/R8).

   One walk per parsed file extracts, for every function binding
   (top-level, module-nested and [let]-nested), the calls it makes,
   the exceptions it can raise directly, the [for]/[while] loops it
   contains and whether it polls a [Budget] — everything the
   whole-project passes in [Callgraph] need, at file+function
   granularity.  The same walk reports rule R9 (hot-loop allocation)
   because it is the only pass that tracks loop context.

   Conventions and approximations (documented in DESIGN.md):
   - an inline [fun] passed as an argument is attributed to its
     enclosing function: combinators like [Bitset.iter] run their
     argument within the dynamic extent of the call, so raises and
     polls inside the lambda propagate through the enclosing function;
   - a [let]-bound nested function is its own node, named
     [outer.inner], and bare calls resolve through the scope chain;
   - handler context is syntactic: a [try]/[match ... with exception]
     whose guard-free patterns cover an exception class masks it. *)

open Parsetree

type exn_class =
  | Exhausted  (* Budget.Exhausted: the sanctioned cooperative unwind *)
  | Failure_
  | Invalid_argument_
  | Not_found_
  | Other of string

let exn_class_name = function
  | Exhausted -> "Budget.Exhausted"
  | Failure_ -> "Failure"
  | Invalid_argument_ -> "Invalid_argument"
  | Not_found_ -> "Not_found"
  | Other s -> s

let exn_class_equal a b =
  match (a, b) with
  | Exhausted, Exhausted
  | Failure_, Failure_
  | Invalid_argument_, Invalid_argument_
  | Not_found_, Not_found_ -> true
  | Other x, Other y -> String.equal x y
  | _ -> false

type handler = Catch_all | Catch of exn_class list

let caught hs c =
  List.exists
    (function
      | Catch_all -> true
      | Catch cs -> List.exists (exn_class_equal c) cs)
    hs

type call = {
  callee : string list;  (* dotted path components, [Stdlib] stripped *)
  labels : string list;  (* labelled/optional argument names supplied *)
  call_loc : Location.t;
  call_loop : int;  (* innermost enclosing loop index, -1 at top level *)
  call_handlers : handler list;  (* innermost first *)
}

type raise_site = {
  exn : exn_class;
  via : string;  (* human-readable raiser, e.g. "failwith" *)
  raise_loc : Location.t;
  raise_handlers : handler list;
}

type loop = {
  loop_loc : Location.t;
  enclosing : int;  (* index of the enclosing loop, -1 *)
  (* lint: domain-local loop facts are built per file inside one scan
     call and only read after the scan returns *)
  mutable nests : bool;  (* contains another for/while loop *)
  (* lint: domain-local loop facts are built per file inside one scan
     call and only read after the scan returns *)
  mutable loop_poll : bool;  (* a Budget poll appears inside *)
}

type fn = {
  fn_path : string;  (* dotted path within the file, e.g. "M.count.go" *)
  fn_loc : Location.t;
  fn_rec : bool;  (* bound with [let rec] *)
  fn_params : string list;  (* labelled/optional parameter names *)
  (* lint: domain-local function summaries are built per file inside one
     scan call and only read after the scan returns *)
  mutable fn_polls : bool;  (* body contains a direct Budget poll *)
  (* lint: domain-local function summaries are built per file inside one
     scan call and only read after the scan returns *)
  mutable fn_calls : call list;
  (* lint: domain-local function summaries are built per file inside one
     scan call and only read after the scan returns *)
  mutable fn_raises : raise_site list;
  (* lint: domain-local function summaries are built per file inside one
     scan call and only read after the scan returns *)
  mutable fn_loops : loop list;  (* in definition order; indexed by
                                    [call_loop]/[enclosing] *)
}

type file_summary = {
  sum_file : string;
  sum_in_lib : bool;
  sum_fns : fn list;
  sum_aliases : (string * string list) list;
      (* module aliases: [module B = Wlcq_robust.Budget] *)
}

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

let flatten li = try Longident.flatten li with _ -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let class_of_exn_path parts =
  match List.rev (strip_stdlib parts) with
  | "Exhausted" :: _ -> Exhausted
  | [ "Failure" ] -> Failure_
  | [ "Invalid_argument" ] -> Invalid_argument_
  | [ "Not_found" ] -> Not_found_
  | last :: _ -> Other last
  | [] -> Other "?"

(* Budget poll entry points: [tick]/[live]/[tripped]/[poll] observe the
   trip state without raising; [check]/[tick_check] raise [Exhausted].
   Matched on the last two path components so the conventional
   [module Budget = Wlcq_robust.Budget] alias and the fully qualified
   form both hit. *)
let budget_poll parts =
  match List.rev (strip_stdlib parts) with
  | f :: "Budget" :: _ -> (
    match f with
    | "tick" | "live" | "tripped" | "poll" -> Some false
    | "tick_check" | "check" -> Some true
    | _ -> None)
  | _ -> None

(* Raising stdlib entry points tracked beyond explicit
   [raise]/[failwith]/[invalid_arg].  Bounds checks ([Array.get]) and
   [assert] are deliberately out of scope: they signal programming
   bugs, not control flow the Outcome contract must contain. *)
let stdlib_raiser parts =
  match strip_stdlib parts with
  | [ "failwith" ] -> Some (Failure_, "failwith")
  | [ "invalid_arg" ] -> Some (Invalid_argument_, "invalid_arg")
  | [ "int_of_string" ] -> Some (Failure_, "int_of_string")
  | [ "Hashtbl"; "find" ] -> Some (Not_found_, "Hashtbl.find")
  | [ "List"; ("find" | "assoc") as f ] -> Some (Not_found_, "List." ^ f)
  | [ "List"; ("hd" | "tl") as f ] -> Some (Failure_, "List." ^ f)
  | [ "List"; "nth" ] -> Some (Failure_, "List.nth")
  | [ "Option"; "get" ] -> Some (Invalid_argument_, "Option.get")
  | [ "Sys"; "getenv" ] -> Some (Not_found_, "Sys.getenv")
  | _ -> None

(* The [List.map] family (and friends) that allocate a fresh structure
   per call — flagged by R9 when called from an engine hot loop. *)
let allocating_combinator parts =
  match strip_stdlib parts with
  | [ "@" ] -> Some "l1 @ l2"
  | [ "List";
      ( "map" | "mapi" | "map2" | "rev_map" | "filter" | "filteri"
      | "filter_map" | "concat_map" | "init" | "append" | "concat"
      | "flatten" | "combine" | "split" | "merge" | "sort" | "sort_uniq"
      | "stable_sort" | "fast_sort" | "rev" ) as f ] -> Some ("List." ^ f)
  | [ "Array"; ("map" | "mapi" | "map2" | "to_list" | "of_list" | "init") as f ]
    -> Some ("Array." ^ f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pattern/handler helpers                                             *)
(* ------------------------------------------------------------------ *)

(* Exception classes a guard-free catch pattern covers. *)
let rec classes_of_catch_pattern p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> Some `All
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> classes_of_catch_pattern p
  | Ppat_or (a, b) -> (
    match (classes_of_catch_pattern a, classes_of_catch_pattern b) with
    | Some `All, _ | _, Some `All -> Some `All
    | Some (`Some xs), Some (`Some ys) -> Some (`Some (xs @ ys))
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None)
  | Ppat_construct ({ txt; _ }, _) ->
    Some (`Some [ class_of_exn_path (flatten txt) ])
  | _ -> None

let handler_of_patterns pats =
  List.fold_left
    (fun acc p ->
       match (acc, classes_of_catch_pattern p) with
       | Catch_all, _ | _, Some `All -> Catch_all
       | Catch xs, Some (`Some ys) -> Catch (xs @ ys)
       | acc, None -> acc)
    (Catch []) pats

let guardfree_patterns cases =
  List.filter_map
    (fun c -> if Option.is_some c.pc_guard then None else Some c.pc_lhs)
    cases

(* [exception P] sub-patterns of a [match] case pattern. *)
let rec exception_subpatterns p =
  match p.ppat_desc with
  | Ppat_exception sub -> [ sub ]
  | Ppat_or (a, b) -> exception_subpatterns a @ exception_subpatterns b
  | _ -> []

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

let is_function_expr e =
  match (strip_constraint e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* Labelled/optional parameter names of a function binding's fun-chain
   (feeds R11: io.ml wrappers must take an explicit timeout bound). *)
let rec param_labels e =
  match (strip_constraint e).pexp_desc with
  | Pexp_fun (lbl, _, _, body) -> (
    match lbl with
    | Asttypes.Labelled s | Asttypes.Optional s -> s :: param_labels body
    | Asttypes.Nolabel -> param_labels body)
  | Pexp_newtype (_, body) -> param_labels body
  | _ -> []

let scan ~file ~in_lib ~hot ~report (str : structure) =
  let fns = ref [] in
  let aliases = ref [] in
  let mod_prefix_rev = ref [] in
  (* walker state: current function accumulator plus loop/handler ctx.
     [fn_loops] is built in reverse and flipped once at the end;
     [loop_stack] holds the records of the enclosing loop chain,
     innermost first, so poll/nest marking never indexes a list. *)
  let current = ref None in
  let cur_loop = ref (-1) in
  let loop_stack = ref [] in
  let handlers = ref [] in
  let new_fn ~path ~loc ~is_rec ~params =
    let f =
      { fn_path = path; fn_loc = loc; fn_rec = is_rec; fn_params = params;
        fn_polls = false; fn_calls = []; fn_raises = []; fn_loops = [] }
    in
    fns := f :: !fns;
    f
  in
  let fn () =
    match !current with
    | Some f -> f
    | None ->
      (* top-level effectful code outside any function binding *)
      let f =
        new_fn ~path:"<init>" ~loc:Location.none ~is_rec:false ~params:[]
      in
      current := Some f;
      f
  in
  let add_loop loc =
    let f = fn () in
    let l =
      { loop_loc = loc; enclosing = !cur_loop; nests = false;
        loop_poll = false }
    in
    let idx = List.length f.fn_loops in
    f.fn_loops <- l :: f.fn_loops;
    (match !loop_stack with
     | outer :: _ -> outer.nests <- true
     | [] -> ());
    l, idx
  in
  let mark_poll () =
    let f = fn () in
    f.fn_polls <- true;
    (* a poll inside a loop covers that loop and every enclosing one *)
    List.iter (fun l -> l.loop_poll <- true) !loop_stack
  in
  let add_call ~callee ~labels ~loc =
    let f = fn () in
    f.fn_calls <-
      { callee; labels; call_loc = loc; call_loop = !cur_loop;
        call_handlers = !handlers }
      :: f.fn_calls
  in
  let add_raise ~exn ~via ~loc =
    let f = fn () in
    f.fn_raises <-
      { exn; via; raise_loc = loc; raise_handlers = !handlers }
      :: f.fn_raises
  in
  let report_r9 loc what =
    if hot then
      report
        (Diagnostic.of_location ~file ~rule:Diagnostic.R9 loc
           (Printf.sprintf
              "%s allocated per iteration of an engine hot loop: hoist it \
               out of the loop or mark '(* lint: hot-alloc reason *)'"
              what))
  in
  (* seen by the fallback iterator so constructs without a dedicated
     case still recurse through [expr] *)
  let expr_ref = ref (fun (_ : expression) -> ()) in
  let fallback =
    { Ast_iterator.default_iterator with expr = (fun _ e -> !expr_ref e) }
  in
  let ident_use ~path ~loc ~labels =
    match budget_poll path with
    | Some raises ->
      mark_poll ();
      if raises then
        add_raise ~exn:Exhausted
          ~via:(String.concat "." (strip_stdlib path)) ~loc
    | None -> (
      (match stdlib_raiser path with
       | Some (exn, via) -> add_raise ~exn ~via ~loc
       | None -> ());
      (match allocating_combinator path with
       | Some what when !cur_loop >= 0 ->
         report_r9 loc (what ^ " (fresh structure)")
       | _ -> ());
      add_call ~callee:(strip_stdlib path) ~labels ~loc)
  in
  let rec expr e =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      List.iter (value_binding rf) vbs;
      expr body
    | Pexp_fun (_, default, _, fbody) ->
      if !cur_loop >= 0 then report_r9 e.pexp_loc "a closure";
      Option.iter expr default;
      expr fbody
    | Pexp_function cases ->
      if !cur_loop >= 0 then report_r9 e.pexp_loc "a closure";
      List.iter case cases
    | Pexp_newtype (_, fbody) -> expr fbody
    | Pexp_for (_, lo, hi, _, body) ->
      (* bounds evaluate once, outside the loop context *)
      expr lo;
      expr hi;
      in_loop e.pexp_loc (fun () -> expr body)
    | Pexp_while (cond, body) ->
      in_loop e.pexp_loc (fun () ->
          expr cond;
          expr body)
    | Pexp_try (body, cases) ->
      let h = handler_of_patterns (guardfree_patterns cases) in
      let saved = !handlers in
      handlers := h :: saved;
      expr body;
      handlers := saved;
      List.iter case cases
    | Pexp_match (scrut, cases) -> (
      (* [match e with exception P -> ...] catches P around e; a
         literal tuple scrutinee ([match a, b with]) is matched in
         place without allocating, so its components are walked
         directly *)
      let exc =
        List.concat_map exception_subpatterns (guardfree_patterns cases)
      in
      (match exc with
       | [] -> expr_unboxed scrut
       | pats ->
         let h = handler_of_patterns pats in
         let saved = !handlers in
         handlers := h :: saved;
         expr_unboxed scrut;
         handlers := saved);
      List.iter case cases)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      apply ~path:(flatten txt) ~loc args;
      List.iter (fun (_, a) -> expr a) args
    | Pexp_ident { txt; loc } ->
      (* a bare reference: may be a function passed to a combinator —
         recorded as a call so higher-order raise/poll flow is kept *)
      ident_use ~path:(flatten txt) ~loc ~labels:[]
    | Pexp_tuple parts ->
      if !cur_loop >= 0 then report_r9 e.pexp_loc "a boxed tuple";
      List.iter expr parts
    | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, Some arg) ->
      if !cur_loop >= 0 then report_r9 e.pexp_loc "an option";
      expr_unboxed arg
    | Pexp_construct (_, Some arg) ->
      (* a multi-argument constructor parses as one tuple argument,
         but allocates a single block — not a separate tuple *)
      expr_unboxed arg
    | _ -> Ast_iterator.default_iterator.expr fallback e
  and expr_unboxed e =
    (* positions where a literal tuple is part of the surrounding
       construct (constructor argument block, in-place match) rather
       than an allocation of its own *)
    match (strip_constraint e).pexp_desc with
    | Pexp_tuple parts -> List.iter expr parts
    | _ -> expr e
  and case c =
    Option.iter expr c.pc_guard;
    expr c.pc_rhs
  and in_loop loc body =
    let l, idx = add_loop loc in
    let saved = !cur_loop in
    cur_loop := idx;
    loop_stack := l :: !loop_stack;
    body ();
    (loop_stack :=
       match !loop_stack with _ :: rest -> rest | [] -> []);
    cur_loop := saved
  and apply ~path ~loc args =
    let labels =
      List.filter_map
        (fun (lbl, _) ->
           match lbl with
           | Asttypes.Labelled l | Asttypes.Optional l -> Some l
           | Asttypes.Nolabel -> None)
        args
    in
    match strip_stdlib path with
    | [ ("raise" | "raise_notrace") ] -> (
      match args with
      | (_, a) :: _ -> (
        match (strip_constraint a).pexp_desc with
        | Pexp_construct ({ txt; _ }, _) ->
          let cls = class_of_exn_path (flatten txt) in
          add_raise ~exn:cls ~via:("raise " ^ exn_class_name cls) ~loc
        | Pexp_ident _ ->
          (* re-raise of a bound exception value (Fun.protect-style
             passthrough): the classes flowing through are already
             accounted at their origin *)
          ()
        | _ -> add_raise ~exn:(Other "exn") ~via:"raise" ~loc)
      | [] -> ())
    | _ -> ident_use ~path ~loc ~labels
  and value_binding rf vb =
    match (binding_name vb.pvb_pat, is_function_expr vb.pvb_expr) with
    | Some name, true ->
      (* a named function: its own summary node, scoped under the
         enclosing function (if any) for bare-call resolution; the
         closure it allocates still counts for R9 when the definition
         sits inside a loop *)
      if !cur_loop >= 0 then
        report_r9 vb.pvb_loc ("a closure (local function '" ^ name ^ "')");
      let path =
        match !current with
        | Some f when not (String.equal f.fn_path "<init>") ->
          f.fn_path ^ "." ^ name
        | _ -> String.concat "." (List.rev (name :: !mod_prefix_rev))
      in
      let is_rec =
        match rf with
        | Asttypes.Recursive -> true
        | Asttypes.Nonrecursive -> false
      in
      let f =
        new_fn ~path ~loc:vb.pvb_loc ~is_rec
          ~params:(param_labels vb.pvb_expr)
      in
      let saved_fn = !current in
      let saved_loop = !cur_loop in
      let saved_stack = !loop_stack in
      let saved_handlers = !handlers in
      current := Some f;
      cur_loop := -1;
      loop_stack := [];
      handlers := [];
      expr vb.pvb_expr;
      current := saved_fn;
      cur_loop := saved_loop;
      loop_stack := saved_stack;
      handlers := saved_handlers
    | _ -> (
      (* [let x, y = a, b] compiles without building the tuple: walk
         the components directly so R9 does not flag it *)
      match (vb.pvb_pat.ppat_desc, (strip_constraint vb.pvb_expr).pexp_desc)
      with
      | Ppat_tuple _, Pexp_tuple parts -> List.iter expr parts
      | _ -> expr vb.pvb_expr)
  in
  expr_ref := expr;
  let rec structure items = List.iter structure_item items
  and structure_item item =
    match item.pstr_desc with
    | Pstr_value (rf, vbs) ->
      current := None;
      List.iter (value_binding rf) vbs;
      current := None
    | Pstr_module { pmb_name; pmb_expr; _ } -> (
      let name = Option.value ~default:"_" pmb_name.txt in
      match pmb_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> aliases := (name, flatten txt) :: !aliases
      | _ -> module_expr name pmb_expr)
    | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
           module_expr (Option.value ~default:"_" mb.pmb_name.txt) mb.pmb_expr)
        mbs
    | Pstr_include { pincl_mod; _ } -> module_expr_anon pincl_mod
    | Pstr_eval (e, _) ->
      current := None;
      expr e;
      current := None
    | _ -> ()
  and module_expr name me =
    match me.pmod_desc with
    | Pmod_structure sub ->
      mod_prefix_rev := name :: !mod_prefix_rev;
      structure sub;
      (mod_prefix_rev :=
         match !mod_prefix_rev with _ :: rest -> rest | [] -> [])
    | Pmod_constraint (me, _) -> module_expr name me
    | Pmod_functor _ -> ()  (* summarised per application site, like R3 *)
    | _ -> ()
  and module_expr_anon me =
    match me.pmod_desc with
    | Pmod_structure sub -> structure sub
    | Pmod_constraint (me, _) -> module_expr_anon me
    | _ -> ()
  in
  structure str;
  let fns = List.rev !fns in
  (* loops were accumulated in reverse: restore definition order so
     [call_loop]/[enclosing] indices line up *)
  List.iter (fun f -> f.fn_loops <- List.rev f.fn_loops) fns;
  {
    sum_file = file;
    sum_in_lib = in_lib;
    sum_fns = fns;
    sum_aliases = !aliases;
  }
