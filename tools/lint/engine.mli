(** The lint driver: walks source roots, runs the per-file rules on a
    domain pool (the parse itself is serialised — compiler-libs keeps
    lexer state in globals), then the whole-project passes (R3 domain
    safety, the R7/R8 call-graph rules), applies allow pragmas, and
    aggregates per-rule counts. *)

type rule_count = { rule : Diagnostic.rule; findings : int; suppressions : int }

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;  (** active findings, sorted by position *)
  suppressed : Diagnostic.t list;
      (** findings covered by an allow pragma, sorted by position *)
  reasonless : Diagnostic.t list;
      (** R0 diagnostics for pragmas with no recorded reason — reported
          only under [--strict] / the [@lint-strict] alias *)
  by_rule : rule_count list;
  total_suppressions : int;  (** pragmas that suppressed a finding *)
}

(** [run ~roots ()] lints every [.ml] file under [roots] (files or
    directories; missing roots are skipped; [_build], dot-directories
    and [lint_fixtures] are pruned unless [include_fixtures] is
    set). *)
val run : ?include_fixtures:bool -> roots:string list -> unit -> result

(** One JSON object for the whole run:
    [{"files_scanned":…,"diagnostics":[{…,"suppressed":bool},…],
      "total_findings":…,"total_suppressions":…}] — same string
    escaping as the Obs trace exporter. *)
val to_json : result -> string

(** [parse_census text] extracts the per-rule suppression census from
    DESIGN.md: every markdown table row whose first cell is a rule id
    and second cell an integer, as [(rule, recorded_count)] pairs. *)
val parse_census : string -> (Diagnostic.rule * int) list

(** [census_drift ~census result] compares the recorded census against
    the live per-rule suppression counts: [(rule, recorded, actual)]
    for every rule that drifted.  Empty means the census is current. *)
val census_drift :
  census:(Diagnostic.rule * int) list ->
  result ->
  (Diagnostic.rule * int * int) list
