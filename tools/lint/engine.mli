(** The lint driver: walks source roots, runs the per-file AST rules
    and the whole-project domain-safety pass, applies allow pragmas,
    and aggregates per-rule counts. *)

type rule_count = { rule : Diagnostic.rule; findings : int; suppressions : int }

type result = {
  files_scanned : int;
  findings : Diagnostic.t list;  (** active findings, sorted by position *)
  by_rule : rule_count list;
  total_suppressions : int;  (** pragmas that suppressed a finding *)
}

(** [run ~roots ()] lints every [.ml] file under [roots] (files or
    directories; missing roots are skipped; [_build], dot-directories
    and [lint_fixtures] are pruned unless [include_fixtures] is
    set). *)
val run : ?include_fixtures:bool -> roots:string list -> unit -> result
