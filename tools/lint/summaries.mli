(** Per-file, per-function summaries feeding the interprocedural rules.

    [scan] walks one parsed structure and produces a summary of every
    function binding it contains: the calls it makes (with labelled
    arguments and the syntactic handler/loop context of each site), the
    exceptions it can raise directly, its [for]/[while] loops and
    whether it polls a [Budget].  [Callgraph] links the summaries of
    all files into a project-wide graph for rules R7 and R8.

    The walk also reports rule R9 (per-iteration allocation in engine
    hot loops) when [hot] is set, because it is the only pass with
    loop context. *)

type exn_class =
  | Exhausted  (** [Budget.Exhausted] — the sanctioned cooperative unwind *)
  | Failure_
  | Invalid_argument_
  | Not_found_
  | Other of string  (** any other constructor, by name *)

val exn_class_name : exn_class -> string
val exn_class_equal : exn_class -> exn_class -> bool

type handler = Catch_all | Catch of exn_class list

(** [caught hs c] — does the handler stack [hs] mask class [c]? *)
val caught : handler list -> exn_class -> bool

type call = {
  callee : string list;  (** dotted path components, [Stdlib] stripped *)
  labels : string list;  (** labelled/optional argument names supplied *)
  call_loc : Location.t;
  call_loop : int;  (** innermost enclosing loop index, -1 at top level *)
  call_handlers : handler list;  (** innermost first *)
}

type raise_site = {
  exn : exn_class;
  via : string;  (** human-readable raiser, e.g. ["failwith"] *)
  raise_loc : Location.t;
  raise_handlers : handler list;
}

type loop = {
  loop_loc : Location.t;
  enclosing : int;  (** index of the enclosing loop, -1 *)
  mutable nests : bool;  (** contains another [for]/[while] loop *)
  mutable loop_poll : bool;  (** a [Budget] poll appears inside *)
}

type fn = {
  fn_path : string;  (** dotted path within the file, e.g. ["M.count.go"] *)
  fn_loc : Location.t;
  fn_rec : bool;  (** bound with [let rec] *)
  fn_params : string list;
      (** labelled/optional parameter names of the binding's fun-chain
          (feeds R11's timeout-bound requirement) *)
  mutable fn_polls : bool;  (** body contains a direct [Budget] poll *)
  mutable fn_calls : call list;
  mutable fn_raises : raise_site list;
  mutable fn_loops : loop list;
      (** in definition order; indexed by [call_loop]/[enclosing] *)
}

type file_summary = {
  sum_file : string;
  sum_in_lib : bool;
  sum_fns : fn list;
  sum_aliases : (string * string list) list;
      (** module aliases: [module B = Wlcq_robust.Budget] *)
}

(** [scan ~file ~in_lib ~hot ~report str] summarises [str].  When [hot]
    (the file is an engine hot path per R6's definition), R9 findings
    are emitted through [report]. *)
val scan :
  file:string ->
  in_lib:bool ->
  hot:bool ->
  report:(Diagnostic.t -> unit) ->
  Parsetree.structure ->
  file_summary
