(* Rule R7: budget-poll reachability.

   Every way the engine can spin for an unbounded number of steps
   while a deadline is armed — a [for]/[while] loop doing real work,
   or a recursive call cycle — must reach a [Budget] poll on its
   iteration path, provided the region is reachable from a
   [*_budgeted] entry point in [lib/].  A region that never polls is
   the unkillable part of the engine: [wlcq serve]'s watchdog can trip
   the budget, but nothing in the region will ever notice.

   Two finding shapes:

   - a syntactic loop with no poll inside and no budget-carrying call
     to a polling function, when the loop does real work (it nests
     another loop, or calls something that can itself run unbounded —
     flat initialisation loops over an array are not findings);
   - a recursive component (self-recursion or a mutual cycle) none of
     whose members can reach a poll.

   Poll propagation is budget-aware ([Callgraph.budget_edge]): a
   cross-file call that does not pass [~budget] pins the callee to its
   own defaulted budget, so its internal polls do not keep this loop
   killable — the concern the retired R5 rule expressed as a curated
   entry-point list. *)

module SS = Set.Make (String)

let fn_display (n : Callgraph.node) =
  Printf.sprintf "%s (%s)" n.Callgraph.nfn.Summaries.fn_path n.Callgraph.nfile

let entry_display g origin key =
  match Hashtbl.find_opt origin key with
  | Some entry_key -> (
    match Callgraph.find_node g entry_key with
    | Some e -> fn_display e
    | None -> "?")
  | None -> "?"

let check (g : Callgraph.t) ~report =
  let entries = Callgraph.budgeted_entries g in
  match entries with
  | [] -> ()
  | _ ->
    let entry_keys = List.map (fun n -> n.Callgraph.key) entries in
    let origin = Callgraph.reachable g ~entries:entry_keys in
    let polls = Callgraph.polls_transitive g in
    let loopy = Callgraph.loopy_transitive g in
    (* syntactic loops *)
    List.iter
      (fun (n : Callgraph.node) ->
         if n.Callgraph.nin_lib && Hashtbl.mem origin n.Callgraph.key then begin
           let fn = n.Callgraph.nfn in
           let edges = Callgraph.out_edges g n.Callgraph.key in
           List.iteri
             (fun li (l : Summaries.loop) ->
                let edges_in_loop =
                  List.filter
                    (fun (e : Callgraph.edge) ->
                       let cl = e.Callgraph.ecall.Summaries.call_loop in
                       cl >= 0 && Callgraph.loop_within fn ~inner:cl ~outer:li)
                    edges
                in
                let polled =
                  l.Summaries.loop_poll
                  || List.exists
                       (fun e ->
                          Callgraph.budget_edge g n e
                          && SS.mem e.Callgraph.etarget polls)
                       edges_in_loop
                in
                let serious =
                  l.Summaries.nests
                  || List.exists
                       (fun e -> SS.mem e.Callgraph.etarget loopy)
                       edges_in_loop
                in
                if serious && not polled then
                  report
                    (Diagnostic.of_location ~file:n.Callgraph.nfile
                       ~rule:Diagnostic.R7 l.Summaries.loop_loc
                       (Printf.sprintf
                          "loop in '%s', reachable from budgeted entry %s, \
                           does unbounded work but never reaches a Budget \
                           poll: put Budget.tick/tick_check on the iteration \
                           path (threading ~budget into the calls it makes) \
                           so a tripped deadline can stop it"
                          fn.Summaries.fn_path
                          (entry_display g origin n.Callgraph.key))))
             fn.Summaries.fn_loops
         end)
      g.Callgraph.node_list;
    (* recursive components *)
    List.iter
      (fun comp ->
         let members =
           List.filter_map (Callgraph.find_node g) comp
           |> List.sort (fun (a : Callgraph.node) b ->
                  match String.compare a.Callgraph.nfile b.Callgraph.nfile with
                  | 0 ->
                    String.compare a.Callgraph.nfn.Summaries.fn_path
                      b.Callgraph.nfn.Summaries.fn_path
                  | c -> c)
         in
         let in_lib =
           List.exists (fun (n : Callgraph.node) -> n.Callgraph.nin_lib) members
         in
         let reached =
           List.exists
             (fun (n : Callgraph.node) -> Hashtbl.mem origin n.Callgraph.key)
             members
         in
         let polled =
           List.exists
             (fun (n : Callgraph.node) -> SS.mem n.Callgraph.key polls)
             members
         in
         match members with
         | first :: _ when in_lib && reached && not polled ->
           let cycle =
             String.concat ", "
               (List.map
                  (fun (n : Callgraph.node) -> n.Callgraph.nfn.Summaries.fn_path)
                  members)
           in
           report
             (Diagnostic.of_location ~file:first.Callgraph.nfile
                ~rule:Diagnostic.R7 first.Callgraph.nfn.Summaries.fn_loc
                (Printf.sprintf
                   "recursive cycle {%s}, reachable from budgeted entry %s, \
                    never reaches a Budget poll: add Budget.tick/tick_check \
                    inside the cycle so a tripped deadline can stop it"
                   cycle
                   (entry_display g origin first.Callgraph.key)))
         | _ -> ())
      (Callgraph.recursive_components g)
