(* The Lemma 22 / Observation 23 interpolation, opened up.

   For a query (H, X) and a graph G, every answer a : X -> V(G) has an
   extension set Ext(a) ⊆ Ω = V(G)^Y, and

       |Hom(F_ℓ, G)| = Σ_i  a_i · i^ℓ

   where a_i is the number of answers whose extension set has size i.
   Sampling ℓ = 1 .. |Ω| gives a Vandermonde system; solving it exactly
   recovers (a_1, ..., a_|Ω|), and |Ans| = Σ a_i.  Since each F_ℓ has
   treewidth at most ew(H,X) (Lemma 16), the answer count is a
   function of homomorphism counts from bounded-treewidth graphs —
   that is the entire upper-bound direction of Theorem 1.

   This program prints every intermediate object for the 1-star query
   (x) := ∃y. E(x,y) on C5, where everything is small enough to read.

   Run with:  dune exec examples/interpolation_walkthrough.exe *)

open Wlcq_core
module G = Wlcq_graph
module Bigint = Wlcq_util.Bigint
module Rat = Wlcq_util.Rat

let () =
  let q = (Parser.parse_exn "(x) := exists y . E(x, y)").Parser.query in
  let g = G.Builders.cycle 5 in
  Printf.printf "query: (x) := exists y . E(x, y)     data graph: C5\n\n";

  (* Ω = functions Y -> V(G); |Y| = 1, so |Ω| = 5 *)
  let n_hat = G.Graph.num_vertices g in
  Printf.printf "|Omega| = |V(G)|^|Y| = %d\n\n" n_hat;

  (* homomorphism counts of the cloned queries F_ℓ *)
  Printf.printf "%-6s %-22s %-10s\n" "ell" "F_ell" "|Hom(F_ell, C5)|";
  let rhs =
    Array.init n_hat (fun i ->
        let ell = i + 1 in
        let fe = Extension.f_ell q ell in
        let count = Wlcq_hom.Td_count.count fe.Extension.graph g in
        Printf.printf "%-6d %-22s %-10s\n" ell
          (Printf.sprintf "star with %d centres" ell)
          (Bigint.to_string count);
        count)
  in

  (* the Vandermonde system: row ℓ is  Σ_i a_i i^ℓ = |Hom(F_ℓ, G)| *)
  Printf.printf "\nVandermonde system (unknowns a_1..a_%d):\n" n_hat;
  for row = 0 to n_hat - 1 do
    let terms =
      List.init n_hat (fun j ->
          Printf.sprintf "%s·a_%d"
            (Bigint.to_string (Bigint.pow (Bigint.of_int (j + 1)) (row + 1)))
            (j + 1))
    in
    Printf.printf "  %s = %s\n"
      (String.concat " + " terms)
      (Bigint.to_string rhs.(row))
  done;

  let nodes = Array.init n_hat (fun i -> Bigint.of_int (i + 1)) in
  let coeffs = Wlcq_util.Linalg.vandermonde_solve nodes rhs in
  Printf.printf "\nexact solution:\n";
  Array.iteri
    (fun i c ->
       if not (Rat.is_zero c) then
         Printf.printf "  a_%d = %s   (answers with %d extensions)\n" (i + 1)
           (Rat.to_string c) (i + 1))
    coeffs;

  let total = Array.fold_left Rat.add Rat.zero coeffs in
  Printf.printf "\n|Ans| = sum = %s\n" (Rat.to_string total);
  Printf.printf "direct enumeration agrees: %d\n" (Cq.count_answers q g);

  (* sanity: in C5 every vertex has exactly 2 neighbours, so all five
     answers have extension sets of size 2 — the solution should be
     a_2 = 5 and nothing else *)
  Printf.printf "\n(in C5 every vertex has 2 neighbours, hence a_2 = 5)\n"
