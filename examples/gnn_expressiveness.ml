(* GNN expressiveness and conjunctive queries (Section 1.2).

   A fully-refined order-k GNN computes exactly the k-WL partition of
   k-tuples (Proposition 3, Morris et al.).  Theorem 1 therefore pins
   down the GNN order needed to count the answers of a conjunctive
   query: sew(H, X) — no less, no more.

   This program demonstrates both directions for the 2-star query
   "x1 and x2 have a common neighbour" (sew = 2):
   - an order-2 GNN's partition determines the answer count, and the
     readout reproduces direct enumeration;
   - for order 1 there is a pair of graphs with IDENTICAL features on
     which the query counts differ, so no order-1 readout can work.

   Run with:  dune exec examples/gnn_expressiveness.exe *)

open Wlcq_gnn
module G = Wlcq_graph
module Core = Wlcq_core

let () =
  let q =
    (Core.Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)")
      .Core.Parser.query
  in
  let k = Gnn.sufficient_order q in
  Printf.printf "query: (x1, x2) := exists y . E(x1,y) & E(x2,y)\n";
  Printf.printf "sufficient (and necessary) GNN order: %d\n\n" k;

  Printf.printf "order-%d readout vs direct enumeration:\n" k;
  List.iter
    (fun (name, g) ->
       let n = Gnn.make ~order:k g in
       match Gnn.answer_count_readout q n with
       | None -> assert false
       | Some v ->
         Printf.printf "  %-12s readout = %-5s direct = %d   (%d feature \
                        classes, %d layers)\n"
           name
           (Wlcq_util.Bigint.to_string v)
           (Core.Cq.count_answers q g)
           n.Gnn.num_classes n.Gnn.layers)
    [ ("C5", G.Builders.cycle 5); ("Petersen", G.Builders.petersen ());
      ("K4", G.Builders.clique 4) ];

  Printf.printf "\norder %d is refused (no correct readout exists):\n" (k - 1);
  let low = Gnn.make ~order:(k - 1) (G.Builders.cycle 5) in
  Printf.printf "  answer_count_readout at order %d: %s\n" (k - 1)
    (match Gnn.answer_count_readout q low with
     | None -> "None"
     | Some _ -> "Some (unexpected!)");

  Printf.printf "\nand here is why — an inexpressibility witness:\n";
  match Gnn.inexpressibility_witness q with
  | None -> Printf.printf "  (no witness found)\n"
  | Some (g1, g2) ->
    Printf.printf "  two graphs with %d vertices each:\n"
      (G.Graph.num_vertices g1);
    Printf.printf "  identical order-%d GNN features: %b\n" (k - 1)
      (Gnn.indistinguishable ~order:(k - 1) g1 g2);
    Printf.printf "  |Ans| = %d vs %d  -> every order-%d readout must \
                   answer identically, and is therefore wrong on one of \
                   them\n"
      (Core.Cq.count_answers q g1)
      (Core.Cq.count_answers q g2)
      (k - 1);
    Printf.printf "  order-%d GNN features already differ: %b (Theorem 1 \
                   upper bound)\n"
      k
      (not (Gnn.indistinguishable ~order:k g1 g2))
