(* Counting dominating sets via star queries (Corollaries 6 and 68).

   |Δ_k(G)| = C(n,k) − Inj((S_k, X_k), complement(G)) / k!

   and the injective star answers expand into a quantum query with
   signed-Stirling coefficients, which pins the WL-dimension of
   dominating-set counting at exactly k.

   Run with:  dune exec examples/dominating_sets.exe *)

open Wlcq_core
module G = Wlcq_graph
module Bigint = Wlcq_util.Bigint
module Rat = Wlcq_util.Rat

let () =
  let graphs =
    [ ("C5", G.Builders.cycle 5);
      ("C6", G.Builders.cycle 6);
      ("Petersen", G.Builders.petersen ());
      ("K4", G.Builders.clique 4);
      ("grid3x3", G.Builders.grid 3 3) ]
  in
  Printf.printf "size-k dominating sets, counted three ways\n";
  Printf.printf "(direct enumeration | star reduction | quantum expansion):\n\n";
  Printf.printf "%-10s" "graph";
  for k = 1 to 4 do Printf.printf "  %-16s" (Printf.sprintf "k=%d" k) done;
  Printf.printf "\n";
  List.iter
    (fun (name, g) ->
       Printf.printf "%-10s" name;
       for k = 1 to 4 do
         let a = Bigint.to_string (Domset.count_direct k g) in
         let b = Bigint.to_string (Domset.count_via_stars k g) in
         let c = Bigint.to_string (Domset.count_via_quantum k g) in
         if a = b && b = c then Printf.printf "  %-16s" a
         else Printf.printf "  %s|%s|%s(!)" a b c
       done;
       Printf.printf "\n")
    graphs;

  (* The Corollary 68 quantum query behind the reduction. *)
  Printf.printf "\nquantum expansion of Inj((S_3, X_3), .)  (Corollary 68):\n";
  let q = Quantum.injective_star 3 in
  List.iter
    (fun t ->
       Printf.printf "  %4s x (S_%d)\n"
         (Rat.to_string t.Quantum.coeff)
         (Cq.num_free t.Quantum.query))
    (Quantum.terms q);
  Printf.printf "\nWL-dimension of counting 3-dominating sets = hsew = %d\n"
    (Quantum.hsew q)
