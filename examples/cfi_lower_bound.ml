(* The Section-4 lower bound, end to end.

   For the 2-star query (sew = 2) this program:
   1. computes the counting core and the saturating odd ℓ,
   2. builds F = F_ℓ(core) with tw(F) = 2,
   3. builds the twisted CFI pair χ(F, ∅) and χ(F, {x1}),
   4. verifies they are 1-WL-equivalent (Lemma 35) yet carry
      different colour-prescribed answer counts (Lemma 57),
   5. extracts a pair of plain graphs with different total answer
      counts via colour-block cloning (Lemma 40),
   so 1-WL — and hence any fully-refined order-1 GNN — cannot count
   the answers of the 2-star query.

   Run with:  dune exec examples/cfi_lower_bound.exe *)

open Wlcq_core
module G = Wlcq_graph
module Cfi = Wlcq_cfi.Cfi

let () =
  let q =
    (Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)").Parser.query
  in
  let k = Wl_dimension.dimension q in
  Printf.printf "query has WL-dimension %d; building a witness that %d-WL \
                 is not enough...\n\n" k (k - 1);

  let w = Wl_dimension.lower_bound_witness q in
  Printf.printf "F = F_%d(core): %d vertices, treewidth %d\n"
    w.Wl_dimension.f.Extension.ell
    (G.Graph.num_vertices w.Wl_dimension.f.Extension.graph)
    (Wlcq_treewidth.Exact.treewidth w.Wl_dimension.f.Extension.graph);
  Printf.printf "chi(F, {}):   %d vertices\n"
    (Cfi.num_vertices w.Wl_dimension.even);
  Printf.printf "chi(F, {x1}): %d vertices\n\n"
    (Cfi.num_vertices w.Wl_dimension.odd);

  (* Lemma 26: the pair is non-isomorphic. *)
  Printf.printf "non-isomorphic (Lemma 26):        %b\n"
    (not
       (G.Iso.isomorphic w.Wl_dimension.even.Cfi.graph
          w.Wl_dimension.odd.Cfi.graph));

  (* Lemma 35: it is (k-1)-WL-equivalent. *)
  Printf.printf "(k-1)-WL-equivalent (Lemma 35):   %b\n"
    (Wl_dimension.witness_pair_equivalent w (k - 1));

  (* Lemma 57: the colour-prescribed answer counts differ. *)
  let even, odd = Wl_dimension.ans_id_counts w in
  Printf.printf "Ans^id counts (Lemma 57):         %d > %d : %b\n" even odd
    (even > odd);

  (* Lemma 55: the extendable-assignment sets agree with cpAns. *)
  let se = Extendable.make w.Wl_dimension.core w.Wl_dimension.f
      w.Wl_dimension.even in
  let so = Extendable.make w.Wl_dimension.core w.Wl_dimension.f
      w.Wl_dimension.odd in
  Printf.printf "extendable = cpAns (Lemma 55):    %b / %b\n"
    (Extendable.count se = Extendable.count_cp_answers se)
    (Extendable.count so = Extendable.count_cp_answers so);

  (* Lemma 40: cloning turns the coloured gap into a plain one. *)
  match Wl_dimension.separating_pair q with
  | None -> Printf.printf "no separating pair found (unexpected)\n"
  | Some (g1, g2) ->
    let c1 = Cq.count_answers q g1 and c2 = Cq.count_answers q g2 in
    Printf.printf
      "\nseparating pair (Lemma 40): %d vs %d vertices,\n\
       |Ans| = %d vs %d, and the graphs are %d-WL-equivalent: %b\n"
      (G.Graph.num_vertices g1) (G.Graph.num_vertices g2) c1 c2 (k - 1)
      (Wlcq_wl.Equivalence.equivalent (k - 1) g1 g2)
