(* Knowledge graphs (Section 1.3, item C).

   The paper notes its analysis extends to directed graphs with vertex
   and edge labels.  This example builds a small social knowledge
   graph, runs labelled conjunctive queries against it, and shows the
   width machinery (and hence the WL-dimension classification) at work
   in the labelled setting — including a case where edge DIRECTION
   changes the counting core.

   Run with:  dune exec examples/knowledge_graph.exe *)

open Wlcq_kg
module Core = Wlcq_core

let relations = [| "knows"; "worksAt" |]
let labels = [| "_"; "Person"; "Company" |]

(* people 0-3, companies 4-5 *)
let data =
  Kgraph.create ~n:6
    ~vertex_labels:[| 1; 1; 1; 1; 2; 2 |]
    ~edges:
      [ (0, 1, 0); (1, 0, 0); (1, 2, 0); (2, 3, 0); (3, 2, 0);
        (0, 4, 1); (1, 4, 1); (2, 5, 1); (3, 5, 1) ]

let run q_str =
  let p = Kparser.parse_exn ~relations ~labels q_str in
  Printf.printf "%-72s %4d answers   (ew=%d, sew=%d)\n" q_str
    (Kcq.count_answers p.Kparser.query data)
    (Kcq.extension_width p.Kparser.query)
    (Kcq.semantic_extension_width p.Kparser.query)

let () =
  Printf.printf "data: %d people, %d companies, %d labelled edges\n\n"
    4 2 (Kgraph.num_edges data);
  run "(x, y) := knows(x, y)";
  run "(x, y) := exists z . knows(x, z) & knows(z, y)";
  run "(x, y) := exists c . worksAt(x, c) & worksAt(y, c)";
  run "(x) := exists c . worksAt(x, c) & Company(c)";
  run "(x1, x2, x3) := exists c . worksAt(x1, c) & worksAt(x2, c) & worksAt(x3, c)";

  (* direction sensitivity: the undirected pendant-tail query folds to
     a single edge, but its directed analogue is already minimal *)
  Printf.printf "\ndirection changes the counting core:\n";
  let directed =
    Kparser.parse_exn ~relations ~labels
      "(x) := exists y1 y2 . knows(x, y1) & knows(y1, y2)"
  in
  Printf.printf "  directed 2-tail query: counting minimal = %b\n"
    (Kcq.is_counting_minimal directed.Kparser.query);
  let undirected =
    Kcq.of_cq
      (Core.Parser.parse_exn "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)")
        .Core.Parser.query
  in
  Printf.printf "  undirected analogue:   counting minimal = %b (folds to one edge)\n"
    (Kcq.is_counting_minimal undirected);

  (* the WL algorithm on knowledge graphs distinguishes orientations *)
  Printf.printf "\nWL on knowledge graphs sees direction:\n";
  let cyc =
    Kgraph.create ~n:3 ~vertex_labels:[| 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (2, 0, 0) ]
  in
  let acy =
    Kgraph.create ~n:3 ~vertex_labels:[| 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]
  in
  Printf.printf "  directed C3 vs transitive triangle, same underlying graph:\n";
  Printf.printf "  1-WL-equivalent as knowledge graphs: %b\n"
    (Kwl.equivalent 1 cyc acy)
