(* Star queries: treewidth 1, WL-dimension k.

   The k-star (S_k, X_k) asks for k-tuples of vertices with a common
   neighbour.  It is acyclic, yet its extension graph Γ(S_k, X_k) is
   the (k+1)-clique, so sew(S_k, X_k) = k (Section 1.1) — the paper's
   canonical example of how existential quantification inflates the
   WL-dimension (and hence the order of GNNs able to count answers,
   Corollaries 61 and 67).

   Run with:  dune exec examples/star_queries.exe *)

open Wlcq_core
module G = Wlcq_graph

let () =
  Printf.printf
    "k-star queries: phi(x1..xk) = exists y . E(x1,y) & ... & E(xk,y)\n\n";
  Printf.printf "%-4s %-10s %-8s %-14s %-14s %-10s\n" "k" "tw(S_k)"
    "sew" "Gamma=K_{k+1}" "minimal" "WL-dim";
  for k = 1 to 5 do
    let q = Star.query k in
    Printf.printf "%-4d %-10d %-8d %-14b %-14b %-10d\n" k
      (Wlcq_treewidth.Exact.treewidth q.Cq.graph)
      (Extension.semantic_extension_width q)
      (Star.gamma_is_clique k)
      (Minimize.is_counting_minimal q)
      (Wl_dimension.dimension q)
  done;

  (* The semantics: answers of S_k in G are the k-tuples with a common
     neighbour.  Cross-check the generic counter against the direct
     definition. *)
  Printf.printf "\nanswers in the Petersen graph (girth 5: common\n";
  Printf.printf "neighbours are unique for adjacent-free pairs):\n";
  let g = G.Builders.petersen () in
  for k = 1 to 3 do
    Printf.printf "  |Ans(S_%d, Petersen)| = %d (direct: %d)\n" k
      (Cq.count_answers (Star.query k) g)
      (Star.count_common_neighbour_tuples g k);
  done;

  (* F_ℓ(S_k) is the complete bipartite graph K_{k,ℓ}; its treewidth
     min(k, ℓ) climbs to the extension width k as ℓ grows
     (Corollary 18). *)
  Printf.printf "\ntw(F_ell(S_3)) for ell = 1..5 (Corollary 18; ew = 3):\n ";
  let q3 = Star.query 3 in
  for ell = 1 to 5 do
    Printf.printf " ell=%d:%d" ell
      (Wlcq_treewidth.Exact.treewidth (Extension.f_ell q3 ell).Extension.graph)
  done;
  Printf.printf "\n"
