(* Quickstart: parse a conjunctive query, compute its width measures
   and WL-dimension, and count its answers in a data graph.

   Run with:  dune exec examples/quickstart.exe *)

open Wlcq_core
module G = Wlcq_graph

let () =
  (* The paper's running example, the 2-star:
     φ(x1, x2) = ∃y : E(x1, y) ∧ E(x2, y)
     — "x1 and x2 have a common neighbour". *)
  let parsed =
    Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)"
  in
  let q = parsed.Parser.query in
  Printf.printf "query: %s\n\n"
    (Parser.to_formula ~names:parsed.Parser.names q);

  (* Width measures (Definitions 10-12).  The query graph is a tree,
     but the extension graph Γ adds the edge {x1, x2} because the
     quantified component {y} touches both free variables — so the
     extension width exceeds the treewidth. *)
  Printf.printf "treewidth of H:          %d\n"
    (Wlcq_treewidth.Exact.treewidth q.Cq.graph);
  Printf.printf "extension width:         %d\n" (Extension.extension_width q);
  Printf.printf "semantic extension width:%d\n"
    (Extension.semantic_extension_width q);

  (* Theorem 1: the WL-dimension equals the semantic extension width,
     i.e. 1-WL (colour refinement) cannot determine the number of
     answers of this query, but 2-WL can. *)
  Printf.printf "WL-dimension (Theorem 1):%d\n\n" (Wl_dimension.dimension q);

  (* Count answers in a few data graphs, three ways: direct
     enumeration, and the Lemma 22 interpolation from homomorphism
     counts of the F_ℓ graphs. *)
  let graphs =
    [ ("C5", G.Builders.cycle 5);
      ("Petersen", G.Builders.petersen ());
      ("K4", G.Builders.clique 4) ]
  in
  List.iter
    (fun (name, g) ->
       let direct = Cq.count_answers q g in
       let interpolated = Wl_dimension.answers_via_interpolation q g in
       Printf.printf "|Ans(q, %-8s)| = %4d  (interpolated: %s)\n" name direct
         (Wlcq_util.Bigint.to_string interpolated))
    graphs
