(* Observation 62: connected acyclic conjunctive queries cannot
   distinguish 2K3 (two disjoint triangles) from C6 (the 6-cycle).

   These two graphs are the standard example of 1-WL-equivalent,
   non-isomorphic graphs.  Corollary 61 shows acyclic queries have
   UNBOUNDED WL-dimension (the k-star is acyclic with sew = k), yet
   Observation 62 shows the entire class of acyclic queries is too
   weak to reach even 2-WL resolution: every acyclic query returns the
   same count on both graphs, while the triangle query separates them
   immediately.

   Run with:  dune exec examples/acyclic_indistinguishable.exe *)

open Wlcq_core
module G = Wlcq_graph

let acyclic =
  [
    "(x) := exists y . E(x, y)";
    "(x1, x2) := E(x1, x2)";
    "(x1, x2) := exists y . E(x1, y) & E(y, x2)";
    "(x1, x2) := exists y . E(x1, y) & E(x2, y)";
    "(x1, x2, x3) := exists y . E(x1, y) & E(x2, y) & E(x3, y)";
    "(x1) := exists y1 y2 . E(x1, y1) & E(y1, y2)";
    "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)";
    "(x1, x2, x3) := E(x1, x2) & E(x2, x3)";
    "(x1, x2, x3, x4) := exists y . E(x1,y) & E(x2,y) & E(x3,y) & E(x4,y)";
  ]

let triangle = "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)"

let () =
  let g1 = G.Builders.two_triangles () in
  let g2 = G.Builders.cycle 6 in
  Printf.printf "2K3 vs C6: 1-WL-equivalent: %b, isomorphic: %b\n\n"
    (Wlcq_wl.Refinement.equivalent g1 g2)
    (G.Iso.isomorphic g1 g2);
  Printf.printf "%-66s %6s %6s\n" "acyclic query" "2K3" "C6";
  List.iter
    (fun s ->
       let q = (Parser.parse_exn s).Parser.query in
       assert (G.Traversal.is_forest q.Cq.graph);
       Printf.printf "%-66s %6d %6d\n" s (Cq.count_answers q g1)
         (Cq.count_answers q g2))
    acyclic;
  Printf.printf "\ncontrol (cyclic query — the triangle):\n";
  let q = (Parser.parse_exn triangle).Parser.query in
  Printf.printf "%-66s %6d %6d   <- separates!\n" triangle
    (Cq.count_answers q g1) (Cq.count_answers q g2)
