open Wlcq_logic.Counting_logic
open Wlcq_graph
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Evaluation basics                                                   *)
(* ------------------------------------------------------------------ *)

let test_sentences_basic () =
  check_bool "K4 has a triangle" true (holds has_triangle (Builders.clique 4));
  check_bool "C6 has no triangle" false (holds has_triangle (Builders.cycle 6));
  check_bool "petersen triangle-free" false
    (holds has_triangle (Builders.petersen ()));
  check_bool "petersen 3-regular" true (holds (regular 3) (Builders.petersen ()));
  check_bool "P4 not regular" false (holds (regular 1) (Builders.path 4));
  check_bool "C5 min degree 2" true (holds (min_degree_geq 2) (Builders.cycle 5));
  check_bool "C5 min degree 3 fails" false
    (holds (min_degree_geq 3) (Builders.cycle 5));
  check_bool ">= 10 vertices" true
    (holds (num_vertices_geq 10) (Builders.petersen ()));
  check_bool ">= 11 vertices fails" false
    (holds (num_vertices_geq 11) (Builders.petersen ()));
  check_bool "P3 has path3" true (holds has_path3 (Builders.path 3));
  check_bool "matching has no path3" false
    (holds has_path3 (Builders.matching 3))

let test_counting_quantifiers () =
  (* exactly 6 vertices of 2K3 lie on a triangle; 0 in C6 *)
  check_bool "2K3: >=6 on triangles" true
    (holds (vertex_on_triangle_count_geq 6) (Builders.two_triangles ()));
  check_bool "2K3: not >=7" false
    (holds (vertex_on_triangle_count_geq 7) (Builders.two_triangles ()));
  check_bool "C6: none on triangles" false
    (holds (vertex_on_triangle_count_geq 1) (Builders.cycle 6))

let test_variable_width () =
  check_int "triangle width" 3 (variable_width has_triangle);
  check_int "regular width" 2 (variable_width (regular 3));
  check_int "vertex count width" 1 (variable_width (num_vertices_geq 5));
  check_int "path3 width" 3 (variable_width has_path3)

(* an open formula: "x_0 lies on a triangle" *)
let triangle_at_0_open =
  exists 1 (And [ Edge (0, 1); exists 2 (And [ Edge (0, 2); Edge (1, 2) ]) ])

let test_free_variables () =
  Alcotest.(check (list int)) "sentence has no free vars" []
    (free_variables has_triangle);
  Alcotest.(check (list int)) "open formula" [ 0 ]
    (free_variables triangle_at_0_open);
  (* evaluating the open formula with a binding *)
  let g = Builders.two_triangles () in
  check_bool "vertex 0 on a triangle" true (eval triangle_at_0_open g [| 0; -1; -1 |])

(* ------------------------------------------------------------------ *)
(* Characterisation (II): C^{k+1} vs k-WL                              *)
(* ------------------------------------------------------------------ *)

(* a small library of sentences by variable width *)
let c2_sentences =
  [ min_degree_geq 1; min_degree_geq 2; min_degree_geq 3; regular 2;
    regular 3; num_vertices_geq 5; num_vertices_geq 7;
    forall 0 (Count_geq (2, 1, Edge (0, 1))) ]

let c3_sentences =
  [ has_triangle; has_path3; vertex_on_triangle_count_geq 1;
    vertex_on_triangle_count_geq 3; vertex_on_triangle_count_geq 6 ]

let test_c2_agrees_on_1wl_equivalent () =
  (* 2K3 ~1 C6, so no C^2 sentence may distinguish them *)
  let g1 = Builders.two_triangles () and g2 = Builders.cycle 6 in
  check_bool "pair is 1-WL-equivalent" true
    (Wlcq_wl.Equivalence.equivalent 1 g1 g2);
  List.iter
    (fun phi ->
       check_int "width <= 2" 2 (max 2 (variable_width phi));
       check_bool "C2 sentence agrees" false (distinguishes phi g1 g2))
    c2_sentences

let test_c3_separates_non_2wl_equivalent () =
  (* the pair is not 2-WL-equivalent, so SOME C^3 sentence separates:
     the triangle sentence does *)
  let g1 = Builders.two_triangles () and g2 = Builders.cycle 6 in
  check_bool "pair not 2-WL-equivalent" false
    (Wlcq_wl.Equivalence.equivalent 2 g1 g2);
  check_bool "triangle sentence separates" true
    (distinguishes has_triangle g1 g2)

let test_c2_agrees_on_cfi_pair () =
  (* chi(C4) twisted pair is 1-WL-equivalent: C^2 sentences agree *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (Builders.cycle 4) in
  let g1 = even.Wlcq_cfi.Cfi.graph and g2 = odd.Wlcq_cfi.Cfi.graph in
  List.iter
    (fun phi ->
       check_bool "C2 sentence agrees on CFI pair" false
         (distinguishes phi g1 g2))
    c2_sentences

let test_c3_agrees_on_2wl_equivalent () =
  (* chi(K4) twisted pair is 2-WL-equivalent: C^3 sentences agree *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (Builders.clique 4) in
  let g1 = even.Wlcq_cfi.Cfi.graph and g2 = odd.Wlcq_cfi.Cfi.graph in
  List.iter
    (fun phi ->
       check_bool "C3 sentence agrees on 2-WL-equivalent pair" false
         (distinguishes phi g1 g2))
    (c2_sentences @ c3_sentences)

let logic_qcheck =
  [
    QCheck.Test.make
      ~name:"isomorphic graphs agree on all canned sentences" ~count:30
      QCheck.(pair (int_range 2 7) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         let p = Array.init n (fun i -> i) in
         Prng.shuffle rng p;
         let h = Ops.relabel g p in
         List.for_all (fun phi -> not (distinguishes phi g h))
           (c2_sentences @ c3_sentences));
    QCheck.Test.make
      ~name:"triangle sentence matches hom count positivity" ~count:30
      QCheck.(pair (int_range 1 7) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         holds has_triangle g
         = (Wlcq_hom.Brute.count (Builders.clique 3) g > 0));
    QCheck.Test.make
      ~name:"min_degree_geq matches the degree sequence" ~count:50
      QCheck.(triple (int_range 1 7) (int_range 0 4) (int_bound 100000))
      (fun (n, d, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         holds (min_degree_geq d) g
         = List.for_all (fun v -> Graph.degree g v >= d) (Graph.vertices g));
  ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_logic"
    [
      ( "evaluation",
        [
          Alcotest.test_case "sentences" `Quick test_sentences_basic;
          Alcotest.test_case "counting quantifiers" `Quick
            test_counting_quantifiers;
          Alcotest.test_case "variable width" `Quick test_variable_width;
          Alcotest.test_case "free variables" `Quick test_free_variables;
        ] );
      ( "characterisation-II",
        [
          Alcotest.test_case "C2 agrees on 1-WL pair" `Quick
            test_c2_agrees_on_1wl_equivalent;
          Alcotest.test_case "C3 separates non-2-WL pair" `Quick
            test_c3_separates_non_2wl_equivalent;
          Alcotest.test_case "C2 agrees on CFI pair" `Quick
            test_c2_agrees_on_cfi_pair;
          Alcotest.test_case "C3 agrees on 2-WL pair" `Slow
            test_c3_agrees_on_2wl_equivalent;
        ] );
      qsuite "properties" logic_qcheck;
    ]
