open Wlcq_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check_bool "fresh empty" true (Bitset.is_empty s);
  Bitset.set s 0;
  Bitset.set s 63;
  Bitset.set s 99;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 99" true (Bitset.mem s 99);
  check_bool "not mem 50" false (Bitset.mem s 50);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.clear s 63;
  check_bool "cleared" false (Bitset.mem s 63);
  check_int "cardinal after clear" 2 (Bitset.cardinal s)

let test_bitset_word_boundaries () =
  (* exercise indices around the 62-bit word boundary *)
  let s = Bitset.create 200 in
  List.iter (Bitset.set s) [ 61; 62; 63; 123; 124; 125; 199 ];
  Alcotest.(check (list int))
    "to_list sorted" [ 61; 62; 63; 123; 124; 125; 199 ] (Bitset.to_list s)

let test_bitset_algebra () =
  let a = Bitset.of_list 10 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 10 [ 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5; 6; 7 ]
    (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 5 ]
    (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 7 ]
    (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check (list int)) "symdiff" [ 1; 4; 6; 7 ]
    (Bitset.to_list (Bitset.symdiff a b))

let test_bitset_complement_full () =
  let a = Bitset.of_list 65 [ 0; 64 ] in
  let c = Bitset.complement a in
  check_int "complement cardinal" 63 (Bitset.cardinal c);
  check_bool "0 not in complement" false (Bitset.mem c 0);
  check_bool "64 not in complement" false (Bitset.mem c 64);
  check_int "full cardinal" 65 (Bitset.cardinal (Bitset.full 65));
  check_bool "full = complement of empty" true
    (Bitset.equal (Bitset.full 65) (Bitset.complement (Bitset.create 65)))

let test_bitset_subset_disjoint () =
  let a = Bitset.of_list 10 [ 1; 2 ] in
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  let c = Bitset.of_list 10 [ 4; 5 ] in
  check_bool "subset yes" true (Bitset.subset a b);
  check_bool "subset no" false (Bitset.subset b a);
  check_bool "disjoint yes" true (Bitset.disjoint a c);
  check_bool "disjoint no" false (Bitset.disjoint a b)

let bitset_qcheck =
  let gen_list = QCheck.(list_of_size (Gen.int_bound 30) (int_bound 99)) in
  [
    QCheck.Test.make ~name:"bitset of_list/to_list = sort_uniq" ~count:200
      gen_list (fun xs ->
          List.equal Int.equal
            (Bitset.to_list (Bitset.of_list 100 xs))
            (List.sort_uniq Int.compare xs));
    QCheck.Test.make ~name:"bitset union commutes" ~count:200
      QCheck.(pair gen_list gen_list)
      (fun (xs, ys) ->
         let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
         Bitset.equal (Bitset.union a b) (Bitset.union b a));
    QCheck.Test.make ~name:"bitset de Morgan" ~count:200
      QCheck.(pair gen_list gen_list)
      (fun (xs, ys) ->
         let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
         Bitset.equal
           (Bitset.complement (Bitset.union a b))
           (Bitset.inter (Bitset.complement a) (Bitset.complement b)));
    QCheck.Test.make ~name:"bitset cardinal of union + inter" ~count:200
      QCheck.(pair gen_list gen_list)
      (fun (xs, ys) ->
         let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
         Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b)
         = Bitset.cardinal a + Bitset.cardinal b);
  ]

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)
(* ------------------------------------------------------------------ *)

let bi = Bigint.of_int

let test_bigint_roundtrip () =
  List.iter
    (fun n ->
       check_string "to_string of_int" (string_of_int n)
         (Bigint.to_string (bi n));
       check_bool "of_string round trip" true
         (Bigint.equal (bi n) (Bigint.of_string (string_of_int n))))
    [ 0; 1; -1; 42; -42; 999_999_999; 1_000_000_000; -1_000_000_001;
      max_int; min_int ]

let test_bigint_arith () =
  let a = Bigint.of_string "123456789012345678901234567890" in
  let b = Bigint.of_string "987654321098765432109876543210" in
  check_string "add"
    "1111111110111111111011111111100"
    (Bigint.to_string (Bigint.add a b));
  check_string "sub"
    "-864197532086419753208641975320"
    (Bigint.to_string (Bigint.sub a b));
  check_string "mul"
    "121932631137021795226185032733622923332237463801111263526900"
    (Bigint.to_string (Bigint.mul a b))

let test_bigint_divmod () =
  let a = Bigint.of_string "121932631137021795226185032733622923332237463801111263526900" in
  let b = Bigint.of_string "987654321098765432109876543210" in
  let q, r = Bigint.divmod a b in
  check_string "exact quotient" "123456789012345678901234567890"
    (Bigint.to_string q);
  check_bool "exact remainder" true (Bigint.is_zero r);
  let q, r = Bigint.divmod (bi 17) (bi 5) in
  check_string "small q" "3" (Bigint.to_string q);
  check_string "small r" "2" (Bigint.to_string r);
  (* truncated semantics, like Stdlib *)
  let q, r = Bigint.divmod (bi (-17)) (bi 5) in
  check_bool "neg q" true
    (Option.equal Int.equal (Bigint.to_int_opt q) (Some (-17 / 5)));
  check_bool "neg r" true
    (Option.equal Int.equal (Bigint.to_int_opt r) (Some (-17 mod 5)))

let test_bigint_pow_factorial () =
  check_string "2^100" "1267650600228229401496703205376"
    (Bigint.to_string (Bigint.pow Bigint.two 100));
  check_string "20!" "2432902008176640000"
    (Bigint.to_string (Bigint.factorial 20));
  check_string "C(50,25)" "126410606437752"
    (Bigint.to_string (Bigint.binomial 50 25))

let test_bigint_to_int_opt () =
  check_bool "max_int fits" true
    (Option.equal Int.equal (Bigint.to_int_opt (bi max_int)) (Some max_int));
  check_bool "overflow detected" true
    (Option.is_none (Bigint.to_int_opt (Bigint.mul (bi max_int) (bi 2))))

let bigint_qcheck =
  let medium = QCheck.int_range (-1_000_000_000) 1_000_000_000 in
  [
    QCheck.Test.make ~name:"bigint add matches int" ~count:500
      QCheck.(pair medium medium)
      (fun (a, b) -> Bigint.equal (Bigint.add (bi a) (bi b)) (bi (a + b)));
    QCheck.Test.make ~name:"bigint mul matches int" ~count:500
      QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
      (fun (a, b) -> Bigint.equal (Bigint.mul (bi a) (bi b)) (bi (a * b)));
    QCheck.Test.make ~name:"bigint divmod matches int" ~count:500
      QCheck.(pair medium medium)
      (fun (a, b) ->
         QCheck.assume (b <> 0);
         let q, r = Bigint.divmod (bi a) (bi b) in
         Bigint.equal q (bi (a / b)) && Bigint.equal r (bi (a mod b)));
    QCheck.Test.make ~name:"bigint divmod reconstruction" ~count:200
      QCheck.(pair (list_of_size (Gen.int_range 1 12) (int_bound 9))
                (list_of_size (Gen.int_range 1 6) (int_bound 9)))
      (fun (ds, es) ->
         let s l = String.concat "" (List.map string_of_int l) in
         let a = Bigint.of_string (s ds) in
         let b = Bigint.of_string (s es) in
         QCheck.assume (not (Bigint.is_zero b));
         let q, r = Bigint.divmod a b in
         Bigint.equal a (Bigint.add (Bigint.mul q b) r)
         && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0);
    QCheck.Test.make ~name:"bigint string round trip" ~count:200
      QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 9))
      (fun ds ->
         let s =
           String.concat "" (List.map string_of_int ds)
         in
         let canonical =
           (* strip leading zeros *)
           let rec strip i =
             if i < String.length s - 1 && s.[i] = '0' then strip (i + 1)
             else String.sub s i (String.length s - i)
           in
           strip 0
         in
         Bigint.to_string (Bigint.of_string s) = canonical);
    QCheck.Test.make ~name:"bigint gcd divides both" ~count:300
      QCheck.(pair medium medium)
      (fun (a, b) ->
         QCheck.assume (a <> 0 || b <> 0);
         let g = Bigint.gcd (bi a) (bi b) in
         Bigint.is_zero (Bigint.rem (bi a) g)
         && Bigint.is_zero (Bigint.rem (bi b) g));
  ]

(* ------------------------------------------------------------------ *)
(* Rat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rat_normalisation () =
  let q = Rat.of_ints 6 (-4) in
  check_string "normalised" "-3/2" (Rat.to_string q);
  check_string "integer rendering" "5" (Rat.to_string (Rat.of_ints 10 2));
  check_bool "zero" true (Rat.is_zero (Rat.of_ints 0 7))

let test_rat_arith () =
  let a = Rat.of_ints 1 3 and b = Rat.of_ints 1 6 in
  check_string "1/3+1/6" "1/2" (Rat.to_string (Rat.add a b));
  check_string "1/3-1/6" "1/6" (Rat.to_string (Rat.sub a b));
  check_string "1/3*1/6" "1/18" (Rat.to_string (Rat.mul a b));
  check_string "1/3 / 1/6" "2" (Rat.to_string (Rat.div a b))

let rat_qcheck =
  let g = QCheck.(pair (int_range (-1000) 1000) (int_range 1 1000)) in
  let rat_of (n, d) = Rat.of_ints n d in
  [
    QCheck.Test.make ~name:"rat add assoc" ~count:300 QCheck.(triple g g g)
      (fun (x, y, z) ->
         let a = rat_of x and b = rat_of y and c = rat_of z in
         Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c));
    QCheck.Test.make ~name:"rat mul distributes" ~count:300
      QCheck.(triple g g g)
      (fun (x, y, z) ->
         let a = rat_of x and b = rat_of y and c = rat_of z in
         Rat.equal (Rat.mul a (Rat.add b c))
           (Rat.add (Rat.mul a b) (Rat.mul a c)));
    QCheck.Test.make ~name:"rat inverse" ~count:300 g (fun x ->
        let a = rat_of x in
        QCheck.assume (not (Rat.is_zero a));
        Rat.equal (Rat.mul a (Rat.inv a)) Rat.one);
  ]

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let test_linalg_solve () =
  (* [2 1; 1 3] x = [5; 10] -> x = [1; 3] *)
  let a =
    [| [| Rat.of_int 2; Rat.of_int 1 |]; [| Rat.of_int 1; Rat.of_int 3 |] |]
  in
  let b = [| Rat.of_int 5; Rat.of_int 10 |] in
  let x = Linalg.solve a b in
  check_string "x0" "1" (Rat.to_string x.(0));
  check_string "x1" "3" (Rat.to_string x.(1))

let test_linalg_singular () =
  let a =
    [| [| Rat.of_int 1; Rat.of_int 2 |]; [| Rat.of_int 2; Rat.of_int 4 |] |]
  in
  check_int "rank" 1 (Linalg.rank a);
  check_bool "det zero" true (Rat.is_zero (Linalg.determinant a));
  Alcotest.check_raises "solve fails" (Failure "Linalg.solve: singular matrix")
    (fun () -> ignore (Linalg.solve a [| Rat.one; Rat.one |]))

let test_linalg_determinant () =
  let a =
    [|
      [| Rat.of_int 1; Rat.of_int 2; Rat.of_int 3 |];
      [| Rat.of_int 4; Rat.of_int 5; Rat.of_int 6 |];
      [| Rat.of_int 7; Rat.of_int 8; Rat.of_int 10 |];
    |]
  in
  check_string "det" "-3" (Rat.to_string (Linalg.determinant a))

let test_vandermonde () =
  (* c1 * i + c2 * i^2 (i = node) reproduced from samples at nodes 2,5 *)
  let xs = [| bi 2; bi 5 |] in
  (* choose c = (3, -1): row ℓ gives 3*x^ℓ... system: sum_j c_j x_j^ℓ *)
  let c = [| Rat.of_int 3; Rat.of_int (-1) |] in
  let b =
    Array.init 2 (fun i ->
        let l = i + 1 in
        Bigint.add
          (Bigint.mul (bi 3) (Bigint.pow (bi 2) l))
          (Bigint.mul (bi (-1)) (Bigint.pow (bi 5) l)))
  in
  let x = Linalg.vandermonde_solve xs b in
  check_bool "coeff 0" true (Rat.equal x.(0) c.(0));
  check_bool "coeff 1" true (Rat.equal x.(1) c.(1))

let linalg_qcheck =
  [
    QCheck.Test.make ~name:"vandermonde recovers random coefficients"
      ~count:50
      QCheck.(list_of_size (Gen.int_range 1 6) (int_range (-50) 50))
      (fun cs ->
         let n = List.length cs in
         (* distinct non-zero nodes 1..n *)
         let xs = Array.init n (fun i -> bi (i + 1)) in
         let c = Array.of_list (List.map Rat.of_int cs) in
         let b =
           Array.init n (fun i ->
               let l = i + 1 in
               let s = ref Bigint.zero in
               Array.iteri
                 (fun j cj ->
                    let t =
                      Bigint.mul
                        (match Rat.to_bigint_opt cj with
                         | Some b -> b
                         | None -> Alcotest.fail "non-integer coefficient")
                        (Bigint.pow xs.(j) l)
                    in
                    s := Bigint.add !s t)
                 c;
               !s)
         in
         let x = Linalg.vandermonde_solve xs b in
         Array.for_all2 Rat.equal x c);
  ]

(* ------------------------------------------------------------------ *)
(* Perm / Combinat / Prng                                              *)
(* ------------------------------------------------------------------ *)

let test_perm () =
  let p = [| 2; 0; 1 |] in
  check_bool "is perm" true (Perm.is_permutation p);
  check_bool "not perm" false (Perm.is_permutation [| 0; 0; 1 |]);
  check_bool "inverse" true
    (Perm.equal (Perm.compose p (Perm.inverse p)) (Perm.identity 3));
  check_int "number of perms of 4" 24 (List.length (Perm.all 4));
  let distinct = List.sort_uniq Wlcq_util.Ordering.int_array (Perm.all 4) in
  check_int "perms distinct" 24 (List.length distinct)

let test_combinat () =
  check_int "subsets of 5" 32 (List.length (Combinat.subsets [ 1; 2; 3; 4; 5 ]));
  check_int "C(6,3)" 20 (List.length (Combinat.subsets_of_size 3 [ 1; 2; 3; 4; 5; 6 ]));
  check_int "bell 4" 15 (List.length (Combinat.partitions [ 1; 2; 3; 4 ]));
  let count = ref 0 in
  Combinat.iter_tuples 3 4 (fun _ -> incr count);
  check_int "3^4 tuples" 81 !count;
  let count = ref 0 in
  Combinat.iter_subsets_of_size 2 5 (fun _ -> incr count);
  check_int "C(5,2) iter" 10 !count

let test_bigint_order_helpers () =
  check_bool "min" true (Bigint.equal (Bigint.min (bi 3) (bi 7)) (bi 3));
  check_bool "max" true (Bigint.equal (Bigint.max (bi (-3)) (bi 2)) (bi 2));
  check_bool "succ" true (Bigint.equal (Bigint.succ (bi (-1))) Bigint.zero);
  check_bool "pred" true (Bigint.equal (Bigint.pred Bigint.zero) Bigint.minus_one);
  check_int "sign pos" 1 (Bigint.sign (bi 5));
  check_int "sign neg" (-1) (Bigint.sign (bi (-5)));
  check_int "sign zero" 0 (Bigint.sign Bigint.zero);
  let open Bigint.Infix in
  check_bool "infix arithmetic" true
    (Bigint.equal ((bi 6 * bi 7) + bi 1 - bi 43 / bi 43) (bi 42));
  check_bool "infix comparisons" true
    (bi 1 < bi 2 && bi 2 <= bi 2 && bi 3 > bi 2 && bi 3 >= bi 3 && bi 4 = bi 4)

let test_rat_order_helpers () =
  check_bool "compare" true (Rat.compare (Rat.of_ints 1 3) (Rat.of_ints 1 2) < 0);
  check_bool "abs" true (Rat.equal (Rat.abs (Rat.of_ints (-3) 4)) (Rat.of_ints 3 4));
  check_int "sign" (-1) (Rat.sign (Rat.of_ints (-3) 4));
  check_bool "is_integer" true (Rat.is_integer (Rat.of_ints 8 4));
  check_bool "to_bigint_opt none" true
    (Option.is_none (Rat.to_bigint_opt (Rat.of_ints 1 2)));
  let open Rat.Infix in
  check_bool "infix" true
    (Rat.of_ints 1 2 + Rat.of_ints 1 3 = Rat.of_ints 5 6)

let test_combinat_cartesian () =
  Alcotest.(check (list (list int))) "cartesian"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Combinat.cartesian [ [ 1; 2 ]; [ 3; 4 ] ]);
  check_int "cartesian with empty factor" 0
    (List.length (Combinat.cartesian [ [ 1 ]; []; [ 2 ] ]));
  Alcotest.(check (list int)) "range" [ 0; 1; 2; 3 ] (Combinat.range 4)

let test_prng_split_copy () =
  let r = Prng.create 5 in
  let c = Prng.copy r in
  check_bool "copy continues identically" true
    (List.init 10 (fun _ -> Prng.int r 1000)
     = List.init 10 (fun _ -> Prng.int c 1000));
  let r = Prng.create 5 in
  let s = Prng.split r in
  check_bool "split diverges from parent" true
    (List.init 10 (fun _ -> Prng.int r 1000)
     <> List.init 10 (fun _ -> Prng.int s 1000))

let test_perm_apply_bounds () =
  check_int "apply" 2 (Perm.apply [| 2; 0; 1 |] 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Perm.apply: out of range") (fun () ->
        ignore (Perm.apply [| 0; 1 |] 2))

let test_prng_determinism () =
  let r1 = Prng.create 42 and r2 = Prng.create 42 in
  let a = List.init 20 (fun _ -> Prng.int r1 1000) in
  let b = List.init 20 (fun _ -> Prng.int r2 1000) in
  Alcotest.(check (list int)) "same seed same stream" a b;
  let r3 = Prng.create 43 in
  let c = List.init 20 (fun _ -> Prng.int r3 1000) in
  check_bool "different seed different stream" true (a <> c)

let test_prng_bounds () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "word boundaries" `Quick
            test_bitset_word_boundaries;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "complement/full" `Quick
            test_bitset_complement_full;
          Alcotest.test_case "subset/disjoint" `Quick
            test_bitset_subset_disjoint;
        ] );
      qsuite "bitset-properties" bitset_qcheck;
      ( "bigint",
        [
          Alcotest.test_case "round trip" `Quick test_bigint_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_bigint_arith;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "pow/factorial/binomial" `Quick
            test_bigint_pow_factorial;
          Alcotest.test_case "to_int_opt" `Quick test_bigint_to_int_opt;
        ] );
      qsuite "bigint-properties" bigint_qcheck;
      ( "rat",
        [
          Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
        ] );
      qsuite "rat-properties" rat_qcheck;
      ( "linalg",
        [
          Alcotest.test_case "solve" `Quick test_linalg_solve;
          Alcotest.test_case "singular" `Quick test_linalg_singular;
          Alcotest.test_case "determinant" `Quick test_linalg_determinant;
          Alcotest.test_case "vandermonde" `Quick test_vandermonde;
        ] );
      qsuite "linalg-properties" linalg_qcheck;
      ( "perm-combinat-prng",
        [
          Alcotest.test_case "perm" `Quick test_perm;
          Alcotest.test_case "perm apply bounds" `Quick test_perm_apply_bounds;
          Alcotest.test_case "combinat" `Quick test_combinat;
          Alcotest.test_case "combinat cartesian" `Quick
            test_combinat_cartesian;
          Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
          Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
          Alcotest.test_case "prng split/copy" `Quick test_prng_split_copy;
        ] );
      ( "order-helpers",
        [
          Alcotest.test_case "bigint" `Quick test_bigint_order_helpers;
          Alcotest.test_case "rat" `Quick test_rat_order_helpers;
        ] );
    ]
