open Wlcq_graph
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Graph basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_create_dedup () =
  let g = Graph.create 3 [ (0, 1); (1, 0); (0, 1) ] in
  check_int "edges deduplicated" 1 (Graph.num_edges g);
  check_bool "adjacent both ways" true
    (Graph.adjacent g 0 1 && Graph.adjacent g 1 0)

let test_create_rejects () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create 3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: endpoint out of range") (fun () ->
        ignore (Graph.create 3 [ (0, 3) ]))

let test_degrees () =
  let g = Builders.star 5 in
  check_int "centre degree" 5 (Graph.degree g 0);
  check_int "leaf degree" 1 (Graph.degree g 3);
  Alcotest.(check (list int)) "degree sequence" [ 5; 1; 1; 1; 1; 1 ]
    (Graph.degree_sequence g)

let test_edges_listing () =
  let g = Builders.cycle 4 in
  Alcotest.(check (list (pair int int)))
    "cycle edges" [ (0, 1); (0, 3); (1, 2); (2, 3) ] (Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let test_builders_counts () =
  check_int "path edges" 5 (Graph.num_edges (Builders.path 6));
  check_int "cycle edges" 6 (Graph.num_edges (Builders.cycle 6));
  check_int "clique edges" 15 (Graph.num_edges (Builders.clique 6));
  check_int "K_{3,4} edges" 12 (Graph.num_edges (Builders.complete_bipartite 3 4));
  check_int "grid 3x4 edges" 17 (Graph.num_edges (Builders.grid 3 4));
  check_int "petersen edges" 15 (Graph.num_edges (Builders.petersen ()));
  check_int "hypercube Q3 edges" 12 (Graph.num_edges (Builders.hypercube 3));
  check_int "2K3 edges" 6 (Graph.num_edges (Builders.two_triangles ()));
  check_int "wheel 5 edges" 10 (Graph.num_edges (Builders.wheel 5))

let test_petersen_regular () =
  let g = Builders.petersen () in
  check_bool "3-regular" true
    (List.for_all (fun v -> Graph.degree g v = 3) (Graph.vertices g));
  check_bool "girth 5" true
    (Option.equal Int.equal (Traversal.girth g) (Some 5))

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)
(* ------------------------------------------------------------------ *)

let test_complement () =
  let g = Builders.cycle 5 in
  let c = Ops.complement g in
  check_int "C5 complement edges" 5 (Graph.num_edges c);
  check_bool "C5 self-complementary" true (Iso.isomorphic g c);
  check_bool "complement involutive" true (Graph.equal (Ops.complement c) g)

let test_disjoint_union () =
  let g = Ops.disjoint_union (Builders.cycle 3) (Builders.cycle 3) in
  check_bool "2K3 built two ways" true
    (Iso.isomorphic g (Builders.two_triangles ()))

let test_tensor_product () =
  (* K2 ⊗ K2 = 2K2; C3 ⊗ K2 = C6 *)
  let k2 = Builders.clique 2 in
  check_bool "K2xK2 = 2 disjoint edges" true
    (Iso.isomorphic (Ops.tensor_product k2 k2) (Builders.matching 2));
  check_bool "C3xK2 = C6" true
    (Iso.isomorphic (Ops.tensor_product (Builders.cycle 3) k2)
       (Builders.cycle 6))

let test_induced () =
  let g = Builders.cycle 6 in
  let sub, mapping = Ops.induced g [ 0; 1; 2 ] in
  check_int "induced path edges" 2 (Graph.num_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] mapping

let test_quotient () =
  (* identifying two antipodal vertices of C4 yields a path shape with
     doubled edge collapsed: vertices {02}, 1, 3, edges {02}-1, {02}-3 *)
  let g = Builders.cycle 4 in
  let q = Ops.quotient g [| 0; 1; 0; 2 |] in
  check_int "quotient vertices" 3 (Graph.num_vertices q);
  check_int "quotient edges" 2 (Graph.num_edges q);
  Alcotest.check_raises "self-loop rejected"
    (Invalid_argument "Ops.quotient: identification creates a self-loop")
    (fun () -> ignore (Ops.quotient (Builders.clique 2) [| 0; 0 |]))

let test_remove_vertex () =
  let g = Builders.cycle 5 in
  let p = Ops.remove_vertex g 0 in
  check_bool "C5 minus vertex = P4" true (Iso.isomorphic p (Builders.path 4))

let test_join () =
  (* join of edgeless graphs is complete bipartite *)
  let j = Ops.join (Graph.empty 2) (Graph.empty 3) in
  check_bool "join = K_{2,3}" true
    (Iso.isomorphic j (Builders.complete_bipartite 2 3));
  check_bool "wheel = K1 join C5" true
    (Iso.isomorphic (Ops.join (Graph.empty 1) (Builders.cycle 5))
       (Builders.wheel 5))

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let test_components () =
  let g = Builders.two_triangles () in
  let _, c = Traversal.connected_components g in
  check_int "two components" 2 c;
  check_bool "not connected" false (Traversal.is_connected g);
  check_bool "cycle connected" true (Traversal.is_connected (Builders.cycle 5));
  Alcotest.(check (list (list int)))
    "component members" [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]
    (Traversal.component_members g)

let test_distances () =
  let g = Builders.cycle 6 in
  check_int "antipodal distance" 3 (Traversal.distance g 0 3);
  check_int "adjacent distance" 1 (Traversal.distance g 0 1);
  check_int "unreachable" (-1)
    (Traversal.distance (Builders.two_triangles ()) 0 3);
  match Traversal.shortest_path g 0 3 with
  | None -> Alcotest.fail "expected path"
  | Some p ->
    check_int "path length" 4 (List.length p);
    let p = Array.of_list p in
    check_bool "endpoints" true (p.(0) = 0 && p.(3) = 3)

let test_trees_and_forests () =
  check_bool "path is tree" true (Traversal.is_tree (Builders.path 7));
  check_bool "cycle not forest" false (Traversal.is_forest (Builders.cycle 5));
  check_bool "matching is forest" true (Traversal.is_forest (Builders.matching 3));
  check_bool "matching not tree" false (Traversal.is_tree (Builders.matching 3))

let test_bipartition () =
  check_bool "even cycle bipartite" true
    (Option.is_some (Traversal.bipartition (Builders.cycle 6)));
  check_bool "odd cycle not bipartite" true
    (Option.is_none (Traversal.bipartition (Builders.cycle 5)));
  check_bool "hypercube bipartite" true
    (Option.is_some (Traversal.bipartition (Builders.hypercube 4)))

let test_girth () =
  check_bool "C7 girth" true
    (Option.equal Int.equal (Traversal.girth (Builders.cycle 7)) (Some 7));
  check_bool "K4 girth" true
    (Option.equal Int.equal (Traversal.girth (Builders.clique 4)) (Some 3));
  check_bool "tree girth" true
    (Option.is_none (Traversal.girth (Builders.path 5)));
  check_bool "Q3 girth" true
    (Option.equal Int.equal (Traversal.girth (Builders.hypercube 3)) (Some 4))

let test_degeneracy () =
  let _, d = Traversal.degeneracy_order (Builders.clique 5) in
  check_int "K5 degeneracy" 4 d;
  let _, d = Traversal.degeneracy_order (Builders.path 9) in
  check_int "path degeneracy" 1 d;
  let _, d = Traversal.degeneracy_order (Builders.grid 4 4) in
  check_int "grid degeneracy" 2 d

(* ------------------------------------------------------------------ *)
(* Iso                                                                 *)
(* ------------------------------------------------------------------ *)

let test_iso_positive () =
  let g = Builders.cycle 5 in
  let p = [| 3; 1; 4; 0; 2 |] in
  let h = Ops.relabel g p in
  check_bool "relabelled cycle isomorphic" true (Iso.isomorphic g h);
  match Iso.find_isomorphism g h with
  | None -> Alcotest.fail "expected isomorphism"
  | Some q ->
    (* verify q is a genuine isomorphism *)
    check_bool "witness valid" true
      (List.for_all
         (fun (u, v) -> Graph.adjacent h q.(u) q.(v))
         (Graph.edges g))

let test_iso_negative () =
  (* same degree sequence, not isomorphic: C6 vs 2K3 *)
  check_bool "C6 vs 2K3" false
    (Iso.isomorphic (Builders.cycle 6) (Builders.two_triangles ()));
  (* 1-WL-equivalent pair needing actual search: C6 vs 2K3 covered;
     also path vs star with equal edge count *)
  check_bool "P4 vs K1,3" false
    (Iso.isomorphic (Builders.path 4) (Builders.star 3))

let test_automorphisms () =
  check_int "C5 automorphisms" 10
    (List.length (Iso.automorphisms (Builders.cycle 5)));
  check_int "K4 automorphisms" 24
    (List.length (Iso.automorphisms (Builders.clique 4)));
  check_int "P3 automorphisms" 2
    (List.length (Iso.automorphisms (Builders.path 3)));
  check_int "star 4 automorphisms" 24
    (List.length (Iso.automorphisms (Builders.star 4)));
  check_int "petersen automorphisms" 120
    (List.length (Iso.automorphisms (Builders.petersen ())))

let test_iso_fixing () =
  let g = Builders.path 3 in
  (* fixing an endpoint to the midpoint is impossible *)
  check_bool "bad pin" true
    (Option.is_none (Iso.find_isomorphism_fixing g g [ (0, 1) ]));
  check_bool "identity pin" true
    (Option.is_some (Iso.find_isomorphism_fixing g g [ (0, 0) ]));
  check_bool "reversal pin" true
    (Option.is_some (Iso.find_isomorphism_fixing g g [ (0, 2) ]))

let test_refine () =
  let g = Builders.star 3 in
  let colours, c = Iso.refine g (Array.make 4 0) in
  check_int "star has 2 stable colours" 2 c;
  check_bool "leaves share colour" true
    (colours.(1) = colours.(2) && colours.(2) = colours.(3));
  check_bool "centre differs" true (colours.(0) <> colours.(1))

let test_refine_pair_distinguishes () =
  (* P4 vs K1,3 have the same degree multiset but refinement separates *)
  let g1 = Builders.path 4 and g2 = Builders.star 3 in
  let c1, c2, c = Iso.refine_pair g1 (Array.make 4 0) g2 (Array.make 4 0) in
  let hist colours =
    let h = Array.make c 0 in
    Array.iter (fun x -> h.(x) <- h.(x) + 1) colours;
    Array.to_list h
  in
  check_bool "refinement distinguishes" true (hist c1 <> hist c2)

let iso_qcheck =
  [
    QCheck.Test.make ~name:"random relabelling is isomorphic" ~count:60
      QCheck.(pair (int_range 1 9) (int_bound 10000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let vs = Array.init n (fun i -> i) in
         Prng.shuffle rng vs;
         Iso.isomorphic g (Ops.relabel g vs));
    QCheck.Test.make ~name:"iso implies equal degree sequence" ~count:60
      QCheck.(pair (int_range 1 8) (int_bound 10000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g1 = Gen.gnp rng n 0.5 in
         let g2 = Gen.gnp rng n 0.5 in
         (not (Iso.isomorphic g1 g2))
         || Graph.degree_sequence g1 = Graph.degree_sequence g2);
    QCheck.Test.make ~name:"automorphism count divides n!" ~count:40
      QCheck.(pair (int_range 1 6) (int_bound 10000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         let a = List.length (Iso.automorphisms g) in
         let fact = List.fold_left ( * ) 1 (List.init n (fun i -> i + 1)) in
         a > 0 && fact mod a = 0);
  ]

(* ------------------------------------------------------------------ *)
(* Graph6                                                              *)
(* ------------------------------------------------------------------ *)

let test_graph6_known () =
  (* canonical examples: the 5-cycle is "DUW" in graph6 *)
  check_bool "C5 decodes from DUW" true
    (Iso.isomorphic (Graph6.decode "DUW") (Builders.cycle 5));
  (* K4 is "C~" *)
  check_bool "K4 decodes from C~" true
    (Iso.isomorphic (Graph6.decode "C~") (Builders.clique 4));
  (* empty graph on 1 vertex is "@" *)
  check_int "single vertex" 1 (Graph.num_vertices (Graph6.decode "@"))

let test_graph6_roundtrip_known () =
  List.iter
    (fun g ->
       check_bool "roundtrip preserves the labelled graph" true
         (Graph.equal (Graph6.decode (Graph6.encode g)) g))
    [ Builders.petersen (); Builders.cycle 5; Builders.clique 7;
      Builders.grid 3 4; Graph.empty 3; Graph.empty 0;
      Builders.star 62 (* forces the 4-byte size header *) ]

let test_graph6_rejects () =
  List.iter
    (fun s ->
       check_bool ("rejects " ^ String.escaped s) true
         (try
            ignore (Graph6.decode s);
            false
          with Invalid_argument _ -> true))
    [ ""; "D"; "DUWW"; "D\x01\x01" ]

let test_graph6_in_spec () =
  match Spec.parse "g6:DUW" with
  | Error e -> Alcotest.fail e
  | Ok g -> check_bool "spec g6 form" true (Iso.isomorphic g (Builders.cycle 5))

let graph6_qcheck =
  [
    QCheck.Test.make ~name:"graph6 roundtrip on random graphs" ~count:80
      QCheck.(pair (int_range 0 40) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.3 in
         Graph.equal (Graph6.decode (Graph6.encode g)) g);
  ]

(* ------------------------------------------------------------------ *)
(* Spectral                                                            *)
(* ------------------------------------------------------------------ *)

module Bigint = Wlcq_util.Bigint

let poly_strings g =
  Array.to_list (Array.map Bigint.to_string (Spectral.characteristic_polynomial g))

let test_charpoly_known () =
  (* K3: λ^3 - 3λ - 2 *)
  Alcotest.(check (list string)) "K3" [ "-2"; "-3"; "0"; "1" ]
    (poly_strings (Builders.clique 3));
  (* C4: λ^4 - 4λ^2 *)
  Alcotest.(check (list string)) "C4" [ "0"; "0"; "-4"; "0"; "1" ]
    (poly_strings (Builders.cycle 4));
  (* P3: λ^3 - 2λ *)
  Alcotest.(check (list string)) "P3" [ "0"; "-2"; "0"; "1" ]
    (poly_strings (Builders.path 3));
  (* empty graph: λ^n *)
  Alcotest.(check (list string)) "empty" [ "0"; "0"; "0"; "1" ]
    (poly_strings (Graph.empty 3))

let test_cospectral_classics () =
  (* the Saltire pair: K1,4 and C4 + K1 share λ^5 - 4λ^3 *)
  let saltire = Ops.disjoint_union (Builders.cycle 4) (Graph.empty 1) in
  check_bool "saltire pair cospectral" true
    (Spectral.cospectral (Builders.star 4) saltire);
  check_bool "saltire pair not isomorphic" false
    (Iso.isomorphic (Builders.star 4) saltire);
  (* SRGs with equal parameters are cospectral *)
  check_bool "shrikhande/rook cospectral" true
    (Spectral.cospectral (Builders.shrikhande ()) (Builders.rook ()));
  (* 2K3 and C6 are 1-WL-equivalent but NOT cospectral: the spectrum
     sees triangles (closed 3-walks) *)
  check_bool "2K3/C6 not cospectral" false
    (Spectral.cospectral (Builders.two_triangles ()) (Builders.cycle 6))

let test_closed_walks () =
  (* tr A^2 = 2m; tr A^3 = 6 * #triangles *)
  let g = Builders.clique 4 in
  check_bool "tr A^2" true
    (Bigint.equal (Spectral.closed_walks g 2) (Bigint.of_int 12));
  check_bool "tr A^3 = 6 * 4 triangles" true
    (Bigint.equal (Spectral.closed_walks g 3) (Bigint.of_int 24));
  check_bool "petersen triangle-free walks" true
    (Bigint.is_zero (Spectral.closed_walks (Builders.petersen ()) 3))

let spectral_qcheck =
  [
    QCheck.Test.make ~name:"isomorphic graphs are cospectral" ~count:40
      QCheck.(pair (int_range 1 8) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let p = Array.init n (fun i -> i) in
         Prng.shuffle rng p;
         Spectral.cospectral g (Ops.relabel g p));
    QCheck.Test.make ~name:"tr A^2 counts edge endpoints" ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         Bigint.equal (Spectral.closed_walks g 2)
           (Bigint.of_int (2 * Graph.num_edges g)));
    QCheck.Test.make
      ~name:"charpoly constant term is the determinant sign pattern"
      ~count:20
      QCheck.(pair (int_range 1 6) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         (* c_0 = det(-A) = (-1)^n det(A); cross-check against the
            exact rational determinant *)
         let c = Spectral.characteristic_polynomial g in
         let a =
           Array.init n (fun i ->
               Array.init n (fun j ->
                   if Graph.adjacent g i j then Wlcq_util.Rat.of_int 1
                   else Wlcq_util.Rat.zero))
         in
         let det = Wlcq_util.Linalg.determinant a in
         let expected =
           if n mod 2 = 0 then det else Wlcq_util.Rat.neg det
         in
         Wlcq_util.Rat.equal (Wlcq_util.Rat.of_bigint c.(0)) expected);
  ]

(* ------------------------------------------------------------------ *)
(* Gen                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gen_tree () =
  let rng = Prng.create 1 in
  for n = 1 to 20 do
    let t = Gen.random_tree rng n in
    check_bool "random tree is a tree" true (Traversal.is_tree t)
  done

let test_gen_connected () =
  let rng = Prng.create 2 in
  for _ = 1 to 10 do
    let g = Gen.random_connected rng 15 0.1 in
    check_bool "random connected is connected" true (Traversal.is_connected g)
  done

let test_gen_gnp_extremes () =
  let rng = Prng.create 3 in
  check_int "p=0 no edges" 0 (Graph.num_edges (Gen.gnp rng 10 0.0));
  check_int "p=1 complete" 45 (Graph.num_edges (Gen.gnp rng 10 1.0))

let test_gen_degree_cap () =
  let rng = Prng.create 4 in
  let g = Gen.random_regular_ish rng 20 3 in
  check_bool "degree cap respected" true
    (List.for_all (fun v -> Graph.degree g v <= 3) (Graph.vertices g))

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "create dedup" `Quick test_create_dedup;
          Alcotest.test_case "create rejects" `Quick test_create_rejects;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "edges listing" `Quick test_edges_listing;
        ] );
      ( "builders",
        [
          Alcotest.test_case "edge counts" `Quick test_builders_counts;
          Alcotest.test_case "petersen" `Quick test_petersen_regular;
        ] );
      ( "ops",
        [
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "tensor product" `Quick test_tensor_product;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "quotient" `Quick test_quotient;
          Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
          Alcotest.test_case "join" `Quick test_join;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "trees/forests" `Quick test_trees_and_forests;
          Alcotest.test_case "bipartition" `Quick test_bipartition;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy;
        ] );
      ( "iso",
        [
          Alcotest.test_case "positive" `Quick test_iso_positive;
          Alcotest.test_case "negative" `Quick test_iso_negative;
          Alcotest.test_case "automorphisms" `Quick test_automorphisms;
          Alcotest.test_case "pinned" `Quick test_iso_fixing;
          Alcotest.test_case "refine" `Quick test_refine;
          Alcotest.test_case "refine pair" `Quick
            test_refine_pair_distinguishes;
        ] );
      qsuite "iso-properties" iso_qcheck;
      ( "graph6",
        [
          Alcotest.test_case "known strings" `Quick test_graph6_known;
          Alcotest.test_case "roundtrip" `Quick test_graph6_roundtrip_known;
          Alcotest.test_case "rejects malformed" `Quick test_graph6_rejects;
          Alcotest.test_case "spec integration" `Quick test_graph6_in_spec;
        ] );
      qsuite "graph6-properties" graph6_qcheck;
      ( "spectral",
        [
          Alcotest.test_case "known polynomials" `Quick test_charpoly_known;
          Alcotest.test_case "cospectral classics" `Quick
            test_cospectral_classics;
          Alcotest.test_case "closed walks" `Quick test_closed_walks;
        ] );
      qsuite "spectral-properties" spectral_qcheck;
      ( "gen",
        [
          Alcotest.test_case "random tree" `Quick test_gen_tree;
          Alcotest.test_case "random connected" `Quick test_gen_connected;
          Alcotest.test_case "gnp extremes" `Quick test_gen_gnp_extremes;
          Alcotest.test_case "degree cap" `Quick test_gen_degree_cap;
        ] );
    ]
