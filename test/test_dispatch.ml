(* Differential tests for the adaptive dispatch layer (Wlcq_dispatch):
   every selectable engine — forced brute, forced reference, forced
   packed, forced-sequential, forced-parallel and the calibrated auto
   mode — must return identical counts on random instances and CFI
   pairs, and the cost-model decision functions are pinned on
   tiny/huge inputs so calibration edits cannot silently change
   routing. *)

open Wlcq_graph
module Dispatch = Wlcq_dispatch.Dispatch
module Prng = Wlcq_util.Prng
module Bigint = Wlcq_util.Bigint
module Td_count = Wlcq_hom.Td_count
module Nice_count = Wlcq_hom.Nice_count
module Fast_count = Wlcq_core.Fast_count
module Cq = Wlcq_core.Cq
module Gen_query = Wlcq_core.Gen_query
module Kwl = Wlcq_wl.Kwl
module Pairs = Wlcq_cfi.Pairs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_engines =
  [ Dispatch.Auto; Dispatch.Brute; Dispatch.Reference; Dispatch.Packed ]

(* Run [f] under engine [e], always restoring Auto. *)
let with_engine e f =
  Dispatch.set_engine e;
  Fun.protect ~finally:(fun () -> Dispatch.set_engine Dispatch.Auto) f

(* Run [f] under a forced parallelism threshold, restoring the
   default. *)
let with_threshold r v f =
  let saved = !r in
  r := v;
  Fun.protect ~finally:(fun () -> r := saved) f

let agree_on to_string results =
  match results with
  | [] -> true
  | (_, first) :: rest ->
    List.for_all (fun (_, v) -> String.equal (to_string v) (to_string first))
      rest

let engine_results count =
  List.map (fun e -> (Dispatch.engine_to_string e, with_engine e count))
    all_engines

(* ------------------------------------------------------------------ *)
(* Differential: homomorphism counting engines                         *)
(* ------------------------------------------------------------------ *)

let qcheck_td_engines_agree =
  QCheck.Test.make ~name:"Td_count: all engines agree on random gnp"
    ~count:40
    QCheck.(pair (int_range 3 9) (int_bound 100000))
    (fun (n, seed) ->
       let rng = Prng.create seed in
       let h = Gen.gnp rng 4 0.6 in
       let g = Gen.gnp rng n 0.4 in
       agree_on Bigint.to_string
         (engine_results (fun () -> Td_count.count h g)))

let qcheck_nice_engines_agree =
  QCheck.Test.make ~name:"Nice_count: all engines agree on random gnp"
    ~count:40
    QCheck.(pair (int_range 3 9) (int_bound 100000))
    (fun (n, seed) ->
       let rng = Prng.create seed in
       let h = Gen.gnp rng 4 0.6 in
       let g = Gen.gnp rng n 0.4 in
       agree_on Bigint.to_string
         (engine_results (fun () -> Nice_count.count h g)))

let qcheck_td_seq_par_agree =
  QCheck.Test.make
    ~name:"Td_count: forced-seq = forced-par on random gnp" ~count:25
    QCheck.(pair (int_range 4 10) (int_bound 100000))
    (fun (n, seed) ->
       let rng = Prng.create seed in
       let h = Builders.path 4 in
       let g = Gen.gnp rng n 0.4 in
       let seq =
         with_threshold Td_count.parallel_threshold max_int (fun () ->
             Td_count.count h g)
       in
       let par =
         with_threshold Td_count.parallel_threshold 0 (fun () ->
             Td_count.count h g)
       in
       Bigint.equal seq par)

(* ------------------------------------------------------------------ *)
(* Differential: answer counting                                       *)
(* ------------------------------------------------------------------ *)

let qcheck_answers_engines_agree =
  QCheck.Test.make
    ~name:"Fast_count: all engines agree with Cq on random queries"
    ~count:40
    QCheck.(pair (int_range 3 8) (int_bound 100000))
    (fun (n, seed) ->
       let rng = Prng.create seed in
       let q = Gen_query.random_connected rng ~num_vars:5 ~num_free:2
           ~edge_prob:0.4 in
       let g = Gen.gnp rng n 0.5 in
       let reference = Bigint.of_int (Cq.count_answers q g) in
       let results = engine_results (fun () -> Fast_count.count_answers q g) in
       agree_on Bigint.to_string (("cq", reference) :: results))

(* ------------------------------------------------------------------ *)
(* Differential: k-WL on random graphs and CFI pairs                   *)
(* ------------------------------------------------------------------ *)

let qcheck_kwl_seq_par_agree =
  QCheck.Test.make
    ~name:"Kwl: forced-seq = forced-par = reference on random pairs"
    ~count:20
    QCheck.(pair (int_range 4 8) (int_bound 100000))
    (fun (n, seed) ->
       let rng = Prng.create seed in
       let g1 = Gen.gnp rng n 0.5 in
       let g2 = Gen.gnp rng n 0.5 in
       let seq =
         with_threshold Kwl.parallel_threshold max_int (fun () ->
             Kwl.equivalent 2 g1 g2)
       in
       let par =
         with_threshold Kwl.parallel_threshold 0 (fun () ->
             Kwl.equivalent 2 g1 g2)
       in
       Bool.equal seq par && Bool.equal seq (Kwl.equivalent_reference 2 g1 g2))

let test_kwl_cfi_pair_engines () =
  (* the classic CFI separation on a twisted pair over C6 — identical
     verdicts under every parallelism forcing (Kwl handles k >= 2;
     k = 1 belongs to Refinement) *)
  let a, b = Pairs.twisted_pair (Builders.cycle 6) in
  let g1 = a.Wlcq_cfi.Cfi.graph and g2 = b.Wlcq_cfi.Cfi.graph in
  List.iter
    (fun k ->
       let expected = Kwl.equivalent_reference k g1 g2 in
       List.iter
         (fun threshold ->
            let got =
              with_threshold Kwl.parallel_threshold threshold (fun () ->
                  Kwl.equivalent k g1 g2)
            in
            check_bool
              (Printf.sprintf "CFI pair k=%d threshold=%d" k threshold)
              expected got)
         [ 0; max_int ])
    [ 2; 3 ]

let test_cfi_hom_counts_engines () =
  (* hom counts into the twisted CFI graphs agree across engines and
     differ between the pair for an odd-cycle pattern (Theorem: the
     pair is hom-distinguished by graphs of treewidth < k) *)
  let a, b = Pairs.twisted_pair (Builders.cycle 5) in
  let g1 = a.Wlcq_cfi.Cfi.graph and g2 = b.Wlcq_cfi.Cfi.graph in
  let h = Builders.cycle 5 in
  check_bool "engines agree on cfi g1" true
    (agree_on Bigint.to_string
       (engine_results (fun () -> Td_count.count h g1)));
  check_bool "engines agree on cfi g2" true
    (agree_on Bigint.to_string
       (engine_results (fun () -> Td_count.count h g2)))

(* ------------------------------------------------------------------ *)
(* The cost model, pinned                                              *)
(* ------------------------------------------------------------------ *)

let test_choose_hom_pinned () =
  (* tiny: P2 -> P3 has brute cost 3 * 2 * 2 = 12 <= brute_hom_max *)
  check_bool "tiny instance routes to brute" true
    (match Dispatch.choose_hom ~nh:2 ~ng:3 ~mg:2 with
     | Dispatch.Hom_brute -> true
     | _ -> false);
  (* huge: brute cost saturates far beyond the cutoff *)
  check_bool "huge instance routes to packed" true
    (match Dispatch.choose_hom ~nh:6 ~ng:100 ~mg:500 with
     | Dispatch.Hom_packed -> true
     | _ -> false);
  (* a large pattern over a sparse target must never go to brute: the
     average degree floors to 1 but real backtracking branches on the
     target's max degree (the Lemma 22 F_ℓ family over a near-matching
     target used to hang here) *)
  check_bool "large pattern over sparse target routes to packed" true
    (match Dispatch.choose_hom ~nh:193 ~ng:4 ~mg:2 with
     | Dispatch.Hom_packed -> true
     | _ -> false);
  (* forcing bypasses the model in both directions *)
  with_engine Dispatch.Brute (fun () ->
      check_bool "forced brute on huge" true
        (match Dispatch.choose_hom ~nh:6 ~ng:100 ~mg:500 with
         | Dispatch.Hom_brute -> true
         | _ -> false));
  with_engine Dispatch.Reference (fun () ->
      check_bool "forced reference" true
        (match Dispatch.choose_hom ~nh:2 ~ng:3 ~mg:2 with
         | Dispatch.Hom_reference -> true
         | _ -> false));
  with_engine Dispatch.Packed (fun () ->
      check_bool "forced packed on tiny" true
        (match Dispatch.choose_hom ~nh:2 ~ng:3 ~mg:2 with
         | Dispatch.Hom_packed -> true
         | _ -> false))

let test_choose_answers_pinned () =
  check_bool "small keyspace routes to enum" true
    (match Dispatch.choose_answers ~nx:2 ~max_comp:3 ~ng:9 with
     | Dispatch.Ans_enum -> true
     | _ -> false);
  check_bool "huge keyspace routes to packed" true
    (match Dispatch.choose_answers ~nx:8 ~max_comp:10 ~ng:50 with
     | Dispatch.Ans_packed -> true
     | _ -> false);
  with_engine Dispatch.Reference (fun () ->
      check_bool "forced reference answers" true
        (match Dispatch.choose_answers ~nx:2 ~max_comp:3 ~ng:9 with
         | Dispatch.Ans_reference -> true
         | _ -> false))

let test_parallel_decisions_pinned () =
  (* the threshold ref contract: max_int forces sequential, 0 forces
     parallel, otherwise work decides *)
  check_int "dp: forced sequential" 1
    (Dispatch.dp_domains ~requested:8 ~subtrees:4 ~work:1_000_000
       ~threshold:max_int);
  check_int "dp: forced parallel" 4
    (Dispatch.dp_domains ~requested:8 ~subtrees:4 ~work:1 ~threshold:0);
  check_int "dp: below threshold" 1
    (Dispatch.dp_domains ~requested:8 ~subtrees:4 ~work:10 ~threshold:100);
  check_int "dp: above threshold" 4
    (Dispatch.dp_domains ~requested:8 ~subtrees:4 ~work:200 ~threshold:100);
  check_int "dp: one domain requested" 1
    (Dispatch.dp_domains ~requested:1 ~subtrees:4 ~work:200 ~threshold:0);
  check_int "wl: forced sequential" 1
    (Dispatch.wl_domains ~requested:8 ~jobs:4096 ~weight:1_000_000
       ~threshold:max_int);
  check_int "wl: forced parallel ignores chunking" 8
    (Dispatch.wl_domains ~requested:8 ~jobs:4096 ~weight:1 ~threshold:0);
  check_int "wl: below weight threshold" 1
    (Dispatch.wl_domains ~requested:8 ~jobs:4096 ~weight:10 ~threshold:100);
  check_int "wl: chunked above threshold" 8
    (Dispatch.wl_domains ~requested:8 ~jobs:4096 ~weight:200 ~threshold:100)

let test_dense_fits_pinned () =
  check_bool "small key is dense" true (Dispatch.dense_fits ~bits:8 ~cap:30);
  check_bool "wide key is sparse" false
    (Dispatch.dense_fits ~bits:40 ~cap:30);
  (* the structural cap binds even when the calibration allows more *)
  check_bool "structural cap binds" false
    (Dispatch.dense_fits ~bits:12 ~cap:10)

let test_calibration_roundtrip () =
  let d = Dispatch.default_calibration in
  Dispatch.set_calibration { d with Dispatch.brute_hom_max = 0 };
  Fun.protect ~finally:Dispatch.reset_calibration (fun () ->
      check_bool "zeroed cutoff reroutes tiny instance" true
        (match Dispatch.choose_hom ~nh:2 ~ng:3 ~mg:2 with
         | Dispatch.Hom_packed -> true
         | _ -> false));
  check_bool "reset restores routing" true
    (match Dispatch.choose_hom ~nh:2 ~ng:3 ~mg:2 with
     | Dispatch.Hom_brute -> true
     | _ -> false)

let test_engine_of_string () =
  List.iter
    (fun (s, e) ->
       match Dispatch.engine_of_string s with
       | Ok e' ->
         check_bool ("parse " ^ s) true
           (String.equal (Dispatch.engine_to_string e)
              (Dispatch.engine_to_string e'))
       | Error _ -> Alcotest.failf "engine_of_string %S errored" s)
    [ ("auto", Dispatch.Auto); ("brute", Dispatch.Brute);
      ("ref", Dispatch.Reference); ("reference", Dispatch.Reference);
      ("packed", Dispatch.Packed) ];
  check_bool "unknown engine rejected" true
    (match Dispatch.engine_of_string "bogus" with
     | Error _ -> true
     | Ok _ -> false)

let test_brute_cost_saturates () =
  check_bool "saturated cost stays within cap" true
    (Dispatch.brute_cost ~nh:64 ~ng:1_000_000 ~mg:500_000_000
     <= Dispatch.sat_cap)

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ qcheck_td_engines_agree; qcheck_nice_engines_agree;
      qcheck_td_seq_par_agree; qcheck_answers_engines_agree;
      qcheck_kwl_seq_par_agree ]

let () =
  Alcotest.run "wlcq_dispatch"
    [
      ( "differential",
        qsuite
        @ [
            Alcotest.test_case "CFI pair under all parallel forcings"
              `Quick test_kwl_cfi_pair_engines;
            Alcotest.test_case "CFI hom counts across engines" `Quick
              test_cfi_hom_counts_engines;
          ] );
      ( "cost model",
        [
          Alcotest.test_case "choose_hom pinned" `Quick
            test_choose_hom_pinned;
          Alcotest.test_case "choose_answers pinned" `Quick
            test_choose_answers_pinned;
          Alcotest.test_case "parallel decisions pinned" `Quick
            test_parallel_decisions_pinned;
          Alcotest.test_case "dense_fits pinned" `Quick
            test_dense_fits_pinned;
          Alcotest.test_case "calibration roundtrip" `Quick
            test_calibration_roundtrip;
          Alcotest.test_case "engine_of_string" `Quick
            test_engine_of_string;
          Alcotest.test_case "brute_cost saturates" `Quick
            test_brute_cost_saturates;
        ] );
    ]
