(* Fixture: the parallel-DP pattern used by the packed counting engine
   (Wlcq_hom.Td_count) — tables and slot assignments allocated locally
   in the driver, worker domains writing only their own stride of the
   local array, results combined after [Domain.join].  No top-level
   mutable state is visible to [Domain.spawn], so R3 must NOT flag it;
   a regression here would force suppressions in lib/hom. *)

let run_parallel tasks =
  let n = Array.length tasks in
  let results = Array.make n 0 in
  let nd = 2 in
  let process_stride w =
    for t = 0 to n - 1 do
      if t mod nd = w then results.(t) <- tasks.(t) * tasks.(t)
    done
  in
  let workers =
    List.init (nd - 1) (fun j -> Domain.spawn (fun () -> process_stride (j + 1)))
  in
  process_stride 0;
  List.iter Domain.join workers;
  Array.fold_left ( + ) 0 results
