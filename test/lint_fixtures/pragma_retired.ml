(* Pragma edge case: a pragma naming the retired rule R5 must be
   reported (R0) with a pointer to its successor R7. *)

(* lint: allow R5 stale suppression from before the retirement *)
let a = 1

let _ = a
