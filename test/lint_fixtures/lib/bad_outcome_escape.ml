(* R8 fixture: exceptions escaping a *_budgeted entry instead of being
   mapped to an Outcome.  Parsed by the linter only, never compiled. *)

(* raises Not_found two calls below the entry *)
let deep_find tbl k = Hashtbl.find tbl k

let middle tbl k = deep_find tbl k

(* raises Failure one call below the entry *)
let validate n =
  if n < 0 then failwith "Bad_outcome_escape.validate: negative size"

(* positive: Not_found and Failure both escape *)
let lookup_budgeted ~budget tbl k =
  Budget.tick budget;
  validate k;
  middle tbl k

(* negative: both classes are caught at the entry and mapped *)
let safe_budgeted ~budget tbl k =
  Budget.tick budget;
  match middle tbl k with
  | v -> `Exact v
  | exception Not_found -> `Exhausted "missing key"

(* negative: Budget.Exhausted mapped to the Outcome it stands for *)
let mapped_budgeted ~budget tbl k =
  match
    Budget.tick budget;
    middle tbl k
  with
  | v -> `Exact v
  | exception Budget.Exhausted r -> `Exhausted r
  | exception Not_found -> `Exhausted "missing key"
