(* R10 fixture: module-level memo tables in lib/ outside lib/cache.
   Parsed by the linter only, never compiled. *)

(* plain Hashtbl.create at top level: fires *)
let memo : (int, int) Hashtbl.t = Hashtbl.create 256

(* a functor-made table module (the repo's *_tbl naming): fires *)
let graph_memo = Graph_tbl.create 64

(* pragma-suppressed: counted, not reported *)
(* lint: allow R10 bounded at 16 entries by construction, cleared per run *)
let scratch = Hashtbl.create 16

(* negatives: a function-local table is per-call state, not a memo *)
let local_count xs =
  let seen = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace seen x ()) xs;
  Hashtbl.length seen

(* negative: non-table mutable state is R3's business, not R10's *)
let cursor = ref 0
