(* R7 cross-module fixture, entry side.  Two shapes:

   - [run_budgeted] reaches Xmod_spin.spin's unpolled loop one call
     deep: the finding lands on the loop in xmod_spin.ml, attributed
     to this entry;
   - [drain_budgeted]'s own loop calls a polling function WITHOUT
     passing ~budget, so the callee is pinned to its defaulted budget
     and its polls cannot keep this loop killable — the exact shape of
     the unbudgeted Brute.iter call once latent in Td_count's
     reference engine.

   [threaded_budgeted] passes ~budget and stays clean.  Parsed by the
   linter only, never compiled. *)

let run_budgeted ~budget g =
  Budget.tick budget;
  Xmod_spin.spin g

let drain_budgeted ~budget gs =
  Budget.tick budget;
  let total = ref 0 in
  for i = 0 to Array.length gs - 1 do
    total := !total + Xmod_spin.polled_count gs.(i)
  done;
  !total

let threaded_budgeted ~budget gs =
  let total = ref 0 in
  for i = 0 to Array.length gs - 1 do
    total := !total + Xmod_spin.polled_count ~budget gs.(i)
  done;
  !total
