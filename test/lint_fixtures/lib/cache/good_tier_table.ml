(* R10 fixture, negative side: lib/cache is the sanctioned home for
   module-level memo state, so the same shapes that fire in
   ../bad_memo_table.ml stay clean here.  Parsed by the linter only,
   never compiled. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 1024

let addr_memo = Graph_tbl.create 256
