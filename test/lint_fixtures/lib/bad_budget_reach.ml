(* R7 fixture: loops and cycles reachable from a *_budgeted entry that
   never reach a Budget poll.  Parsed by the linter only, never
   compiled. *)

(* unpolled nested loop, one (same-file) call below the entry *)
let helper_spin xs =
  let total = ref 0 in
  for i = 0 to Array.length xs - 1 do
    for j = 0 to i do
      total := !total + (xs.(i) * j)
    done
  done;
  !total

(* unpolled recursive cycle, also below the entry *)
let rec spin_a x = if x = 0 then 0 else spin_b (x - 1)
and spin_b x = spin_a x + 1

let sum_budgeted ~budget xs =
  Budget.tick budget;
  helper_spin xs + spin_a (Array.length xs)

(* negative: the loop polls, so it stays clean *)
let polled_budgeted ~budget xs =
  let total = ref 0 in
  for i = 0 to Array.length xs - 1 do
    Budget.tick budget;
    total := !total + xs.(i)
  done;
  !total

(* negative: suppressed with a reasoned pragma *)
let drained_budgeted ~budget xs =
  Budget.tick budget;
  let total = ref 0 in
  (* lint: allow R7 drain loop is bounded by the queue the caller filled *)
  for i = 0 to Array.length xs - 1 do
    for j = 0 to i do
      total := !total + (xs.(i) * xs.(j))
    done
  done;
  !total

(* negative: flat initialisation loop does no unbounded work *)
let flat_budgeted ~budget n =
  Budget.tick budget;
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- i
  done;
  a
