(* R9 fixture: per-iteration allocation in an engine hot loop (this
   file sits under lib/hom, so it is in the hot set).  Parsed by the
   linter only, never compiled. *)

(* positive: a boxed tuple per iteration *)
let sum_pairs xs =
  let total = ref 0 in
  for i = 0 to Array.length xs - 1 do
    let pair = (xs.(i), i) in
    total := !total + fst pair
  done;
  !total

(* positive: a closure per iteration *)
let scan_rows rows =
  let total = ref 0 in
  for i = 0 to Array.length rows - 1 do
    List.iter (fun v -> total := !total + v) rows.(i)
  done;
  !total

(* negative: hoisted closure, int-only loop body *)
let scan_rows_hoisted rows =
  let total = ref 0 in
  let add v = total := !total + v in
  for i = 0 to Array.length rows - 1 do
    List.iter add rows.(i)
  done;
  !total

(* negative: pragma-suppressed allocation (the list is the output) *)
let collect xs =
  let acc = ref [] in
  for i = 0 to Array.length xs - 1 do
    (* lint: hot-alloc builds the result list *)
    acc := (xs.(i), i) :: !acc
  done;
  !acc
