(* R6 fixture: hard-coded size thresholds in engine hot paths (the
   path has a lib/ and a hom/ component, so the rule is in scope).
   Parsed by the linter only, never compiled. *)

(* fires: literal engine-choice cutoff *)
let pick_engine n = if n <= 4096 then `Brute else `Packed

(* fires: shifted-literal parallelism cutoff *)
let go_parallel n = (n * n) >= 1 lsl 15

(* clean: small constants are arity/bit-width facts, not cutoffs *)
let fits_word bits k = bits * k <= 62

(* clean: comparison against a non-constant bound *)
let within limit n = n <= limit

(* clean: equality against a constant is not a threshold *)
let aligned fuel = fuel land 4095 = 0

let suppressed_cap n =
  (* lint: allow R6 representation cap of the packed key codec, not an
     engine choice *)
  n <= 65536
