(* Fixture: a library module with no .mli that prints — rule R4 twice. *)

let shout x = print_endline x
