(* R11 fixture: the designated I/O module.  Blocking calls inside
   functions carrying a ~timeout_s bound are sanctioned — including in
   local helpers that close over the wrapper's bound — but a blocking
   call in a function with no timeout parameter is a finding even
   here. *)

(* clean: the wrapper takes the bound *)
let wait_readable ~timeout_s fd =
  match Unix.select [ fd ] [] [] timeout_s with
  | [], _, _ -> false
  | _ -> true

(* clean: the nested helper closes over the wrapper's ~timeout_s *)
let read_all ~timeout_s fd buf =
  let rec go acc =
    if not (wait_readable ~timeout_s fd) then acc
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> acc
      | n -> go (acc + n)
  in
  go 0

(* finding: blocks with no caller-supplied bound, even in io.ml *)
let read_forever fd buf = Unix.read fd buf 0 (Bytes.length buf)
