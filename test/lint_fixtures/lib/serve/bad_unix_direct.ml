(* R11 fixture: blocking Unix calls in a lib/serve file that is not
   the designated io.ml must each be flagged — including through a
   module alias.  Non-blocking Unix calls stay clean. *)

module U = Unix

(* finding: Unix.read outside io.ml *)
let pump fd buf = Unix.read fd buf 0 64

(* finding: Unix.select outside io.ml *)
let wait fds = Unix.select fds [] [] 1.0

(* finding: Unix.accept outside io.ml *)
let take fd = Unix.accept fd

(* finding: the alias resolves to Unix.write_substring *)
let poke fd = U.write_substring fd "!" 0 1

(* clean: not a blocking socket call *)
let pid () = Unix.getpid ()

(* clean: fcntl-style setup does not block *)
let setup fd = Unix.set_nonblock fd
