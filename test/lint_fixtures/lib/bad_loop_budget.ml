(* R5 fixture: budgeted engines called from loops in lib/ without
   threading a budget.  Parsed by the linter only, never compiled. *)

let bad_for q graphs =
  let total = ref 0 in
  for i = 0 to Array.length graphs - 1 do
    total := !total + Cq.count_answers q graphs.(i)
  done;
  !total

let bad_while q g =
  let k = ref 1 in
  while Wlcq_hom.Td_count.count q g < !k do
    incr k
  done;
  !k

let good_threaded ~budget q graphs =
  let total = ref 0 in
  for i = 0 to Array.length graphs - 1 do
    total := !total + Cq.count_answers ~budget q graphs.(i)
  done;
  !total

let good_outside_loop q g = Cq.count_answers q g

let suppressed_bench_loop q graphs =
  let total = ref 0 in
  for i = 0 to Array.length graphs - 1 do
    (* lint: allow R5 bench loop measures the unbudgeted engine on purpose *)
    total := !total + Cq.count_answers q graphs.(i)
  done;
  !total
