(* R7 cross-module fixture, callee side: the unpolled loop lives here,
   one call away from the budgeted entry in xmod_entry.ml.  Parsed by
   the linter only, never compiled. *)

let spin g =
  let total = ref 0 in
  for i = 0 to Array.length g - 1 do
    for j = 0 to i do
      total := !total + (g.(i) * g.(j))
    done
  done;
  !total

(* polls its own (defaulted) budget: only a ~budget-labelled call from
   the caller's loop lets these polls count for the caller *)
let polled_count ?budget:_ g =
  let total = ref 0 in
  for i = 0 to Array.length g - 1 do
    Budget.tick_check ();
    total := !total + g.(i)
  done;
  !total
