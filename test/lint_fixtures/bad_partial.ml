(* Fixture: every construct below must trip rule R2. *)

let head xs = List.hd xs

let forced x = Option.get x

let sneaky a = Array.unsafe_get a 0

let boom () = failwith "something went wrong"

let guard x = if x < 0 then invalid_arg "negative" else x

let _ = (head, forced, sneaky, boom, guard)
