(* Fixture: every construct below must trip rule R1. *)

let option_eq x = x = Some 3

let option_neq x = x <> None

let list_eq xs = xs = [ 1; 2; 3 ]

let bare_compare xs = List.sort compare xs

let poly_hash x = Hashtbl.hash x

let annotated_table : (int list, int) Hashtbl.t = Hashtbl.create 16

let _ = (option_eq, option_neq, list_eq, bare_compare, poly_hash,
         annotated_table)
