(* Fixture: the blessed pattern for shared state under Domain.spawn —
   top-level [Atomic.t] cells and [Domain.DLS] keys, which R3 must NOT
   flag.  This is the pattern the observability registry (Wlcq_obs)
   relies on; a regression here would force suppressions in lib/obs. *)

let shared_counter = Atomic.make 0

let per_domain_scratch : int list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let compute () =
  let d =
    Domain.spawn (fun () ->
        Domain.DLS.set per_domain_scratch [ 1 ];
        Atomic.incr shared_counter)
  in
  Domain.join d;
  Atomic.get shared_counter + List.length (Domain.DLS.get per_domain_scratch)
