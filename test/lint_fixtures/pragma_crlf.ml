(* Pragma edge case: CRLF line endings must not corrupt pragma
   parsing; this valid pragma suppresses nothing, so it must be
   reported as an unused suppression (R0). *)

(* lint: allow R1 crlf reason survives the carriage return *)
let a = 1

let _ = a
