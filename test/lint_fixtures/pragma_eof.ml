(* Pragma edge case: a pragma on the final line of a file with no
   trailing newline must still be scanned; unused, it is R0. *)
let a = 1
let _ = a
(* lint: allow R1 eof pragma with no trailing newline *)