(* Fixture: top-level mutable state in a Domain.spawn file — rule R3. *)

let shared_counter = ref 0

let shared_memo : (int, int) Hashtbl.t = Hashtbl.create 8

let compute () =
  let d = Domain.spawn (fun () -> incr shared_counter) in
  Domain.join d;
  Hashtbl.length shared_memo
