(* Fixture: a pragma with nothing to suppress must itself be reported
   (rule R0). *)

(* lint: allow R1 nothing here actually violates R1 *)
let fine = Int.equal 1 1
