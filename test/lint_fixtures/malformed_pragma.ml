(* Fixture: pragmas that do not parse must be reported (rule R0). *)

(* lint: allow *)
let a = 1

(* lint: allow RX unknown rule id *)
let b = 2

(* lint: domain-local *)
let c = 3

let _ = (a, b, c)
