(* Fixture: the same violation classes as the bad_* files, every one
   carrying a reasoned pragma — the file must lint clean. *)

(* lint: allow R1 fixture demonstrates an audited polymorphic equality *)
let option_eq x = x = Some 3

(* lint: allow R2 fixture demonstrates an audited partial call *)
let head xs = List.hd xs

let use_domain () = Domain.join (Domain.spawn (fun () -> 1))

(* lint: domain-local fixture state never escapes the test domain *)
let shared = ref 0

let _ = (option_eq, head, use_domain, shared)
