(* Tests for Wlcq_robust: budget mechanics, deterministic fault
   injection, and the degradation ladders of every budgeted engine.

   The ladder tests drive each rung deterministically, without timers:

   - a budget whose latch is tripped by hand ([Budget.trip], no real
     condition behind it) makes every raising check site fire at once,
     while a {!Budget.fork} of it is condition-free and never re-trips
     — this separates "the search phase exhausted" from "the DP rung
     completed after degradation";
   - a budget over an already-cancelled token re-trips at every poll,
     including polls of forked continuation budgets;
   - the {!Fault} layer forces the spawn-demotion and DP-allocation
     paths at rate 1.0.

   Every rung is asserted through its [robust.fallback.*] counter. *)

open Wlcq_graph
open Wlcq_robust
module Obs = Wlcq_obs.Obs
module Cache = Wlcq_cache.Cache
module Exact = Wlcq_treewidth.Exact
module Brute = Wlcq_hom.Brute
module Inj = Wlcq_hom.Inj
module Td_count = Wlcq_hom.Td_count
module Nice_count = Wlcq_hom.Nice_count
module Kwl = Wlcq_wl.Kwl
module Cfi = Wlcq_cfi.Cfi
module Cloning = Wlcq_cfi.Cloning
module Cq = Wlcq_core.Cq
module Parser = Wlcq_core.Parser
module Ucq = Wlcq_core.Ucq
module Fast_count = Wlcq_core.Fast_count
module Wl_dimension = Wlcq_core.Wl_dimension
module Kg_kwl = Wlcq_kg.Kwl
module Kspec = Wlcq_kg.Kspec
module Kparser = Wlcq_kg.Kparser
module Bigint = Wlcq_util.Bigint
module Bitset = Wlcq_util.Bitset
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let reason = Alcotest.testable (Fmt.of_to_string Budget.reason_to_string) ( = )

(* ------------------------------------------------------------------ *)
(* Harness helpers                                                     *)
(* ------------------------------------------------------------------ *)

let ctr name =
  match Obs.find_counter name with
  | Some c -> Obs.counter_value c
  | None -> Alcotest.failf "counter %s is not registered" name

(* Assert that running [f] bumps the named fallback counter. *)
let expect_bump name f =
  let before = ctr name in
  let r = f () in
  check_bool (name ^ " bumped") true (ctr name > before);
  r

(* A live budget whose latch was tripped by hand: every raising check
   site fires immediately, but a fork of it has no condition to
   re-trip on. *)
let hand_tripped () =
  let b = Budget.create () in
  Budget.trip b Budget.Deadline;
  b

(* A budget over an already-cancelled token: trips at the first poll,
   and so does any fork of it. *)
let cancelled_budget () =
  let tk = Budget.token () in
  Budget.cancel tk;
  Budget.create ~cancel:tk ()

let with_fault ~seed ?rate ~sites f =
  Fault.arm ~seed ?rate ~sites ();
  Fun.protect ~finally:Fault.disarm f

(* A 9-vertex G(n, p) draw whose heuristic treewidth bracket is loose
   (lb 4 < ub 5), so the budgeted solver actually enters the branch
   and bound instead of short-circuiting on a tight bracket. *)
let loose_bracket_graph () = Gen.gnp (Prng.create 26) 9 0.5

(* ------------------------------------------------------------------ *)
(* Budget mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let test_create_validation () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> true
    | (_ : Budget.t) -> false
  in
  check_bool "deadline 0 rejected" true (invalid (fun () ->
      Budget.create ~deadline_ms:0.0 ()));
  check_bool "negative deadline rejected" true (invalid (fun () ->
      Budget.create ~deadline_ms:(-3.0) ()));
  check_bool "live-words 0 rejected" true (invalid (fun () ->
      Budget.create ~max_live_mb:0 ()));
  check_bool "unlimited is unlimited" true (Budget.is_unlimited Budget.unlimited);
  check_bool "created budget is limited" false
    (Budget.is_unlimited (Budget.create ()))

let test_trip_latch () =
  let b = Budget.create () in
  check_bool "fresh budget live" true (Budget.live b);
  check_bool "fresh budget not tripped" true (Option.is_none (Budget.tripped b));
  Budget.trip b Budget.Deadline;
  Budget.trip b Budget.Memory;
  (* first writer wins *)
  Alcotest.(check (option reason)) "latched reason" (Some Budget.Deadline)
    (Budget.tripped b);
  check_bool "tripped budget not live" false (Budget.live b);
  check_bool "poll reports the trip" true (Budget.poll b);
  (match Budget.check b with
   | exception Budget.Exhausted r ->
     Alcotest.check reason "check raises the latched reason" Budget.Deadline r
   | () -> Alcotest.fail "check on a tripped budget must raise");
  match Budget.tick_check b with
  | exception Budget.Exhausted _ -> ()
  | () -> Alcotest.fail "tick_check on a tripped budget must raise"

let test_cancellation () =
  let tk = Budget.token () in
  check_bool "fresh token" false (Budget.cancelled tk);
  let b = Budget.create ~cancel:tk () in
  check_bool "no trip before cancel" false (Budget.poll b);
  Budget.cancel tk;
  Budget.cancel tk;
  check_bool "cancel is idempotent" true (Budget.cancelled tk);
  check_bool "poll trips on the cancelled token" true (Budget.poll b);
  Alcotest.(check (option reason)) "reason is Cancelled"
    (Some Budget.Cancelled) (Budget.tripped b)

let test_deadline_trips () =
  let b = Budget.create ~deadline_ms:0.01 () in
  (* busy-wait past the 10 microsecond deadline, then poll *)
  let t0 = Obs.now_ns () in
  while Int64.sub (Obs.now_ns ()) t0 < 1_000_000L do
    ignore (Sys.opaque_identity ())
  done;
  check_bool "poll trips after the deadline" true (Budget.poll b);
  Alcotest.(check (option reason)) "reason is Deadline" (Some Budget.Deadline)
    (Budget.tripped b)

let test_remaining_ns () =
  check_bool "no deadline, no remaining" true
    (Option.is_none (Budget.remaining_ns (Budget.create ())));
  match Budget.remaining_ns (Budget.create ~deadline_ms:1000.0 ()) with
  | None -> Alcotest.fail "deadline budget must report remaining time"
  | Some ns ->
    check_bool "remaining positive" true (Int64.compare ns 0L > 0);
    check_bool "remaining below the deadline" true
      (Int64.compare ns 1_000_000_000L <= 0)

let test_unlimited_inert () =
  let b = Budget.unlimited in
  Budget.tick b;
  Budget.tick_check b;
  Budget.check b;
  Budget.trip b Budget.Deadline;
  check_bool "unlimited never polls true" false (Budget.poll b);
  check_bool "unlimited never trips" true (Option.is_none (Budget.tripped b));
  check_bool "unlimited is live" true (Budget.live b);
  check_bool "fork unlimited = unlimited" true
    (Budget.is_unlimited (Budget.fork b))

let test_fork () =
  (* a hand trip has no condition behind it: the fork stays live *)
  let b = hand_tripped () in
  let f = Budget.fork b in
  check_bool "fork forgets the latch" true (Option.is_none (Budget.tripped f));
  check_bool "fork of a hand trip never re-trips" false (Budget.poll f);
  check_bool "original stays tripped" false (Budget.live b);
  (* a cancelled token is a standing condition: the fork re-trips *)
  let b = cancelled_budget () in
  ignore (Budget.poll b);
  let f = Budget.fork b in
  check_bool "fork latch starts clear" true (Option.is_none (Budget.tripped f));
  check_bool "fork re-trips on the cancelled token" true (Budget.poll f);
  Alcotest.(check (option reason)) "fork re-trip reason"
    (Some Budget.Cancelled) (Budget.tripped f)

let test_tick_interval_poll () =
  (* ticks poll only every tick_interval: a cancelled token goes
     unnoticed until then *)
  let b = cancelled_budget () in
  for _ = 1 to Budget.tick_interval - 2 do
    Budget.tick b
  done;
  check_bool "no poll before the interval" true (Budget.live b);
  for _ = 1 to 2 * Budget.tick_interval do
    Budget.tick b
  done;
  check_bool "tick polls at the interval" false (Budget.live b)

(* ------------------------------------------------------------------ *)
(* Fault layer                                                         *)
(* ------------------------------------------------------------------ *)

let test_fault_arm_disarm () =
  check_bool "disarmed by default" false (Fault.armed ());
  check_bool "disarmed never fails" false (Fault.should_fail Fault.Dp_alloc);
  with_fault ~seed:7 ~sites:[ Fault.Deadline_check ] (fun () ->
      check_bool "armed" true (Fault.armed ());
      check_bool "armed site fails at rate 1" true
        (Fault.should_fail Fault.Deadline_check);
      check_bool "unarmed site never fails" false
        (Fault.should_fail Fault.Domain_spawn);
      check_int "injection counted" 1 (Fault.injected Fault.Deadline_check);
      check_int "other site not counted" 0 (Fault.injected Fault.Domain_spawn));
  check_bool "disarm restores silence" false
    (Fault.should_fail Fault.Deadline_check);
  match Fault.arm ~seed:1 ~rate:1.5 () with
  | exception Invalid_argument _ -> ()
  | () ->
    Fault.disarm ();
    Alcotest.fail "rate outside [0, 1] must be rejected"

let test_fault_determinism () =
  let draw_sequence seed =
    with_fault ~seed ~rate:0.5 ~sites:[ Fault.Domain_spawn ] (fun () ->
        List.init 64 (fun _ -> Fault.should_fail Fault.Domain_spawn))
  in
  let s1 = draw_sequence 42 in
  check_bool "same seed, same draws" true (s1 = draw_sequence 42);
  check_bool "different seed, different draws" true (s1 <> draw_sequence 43);
  check_bool "rate 0.5 fails sometimes" true (List.mem true s1);
  check_bool "rate 0.5 passes sometimes" true (List.mem false s1);
  let zeros =
    with_fault ~seed:42 ~rate:0.0 ~sites:[ Fault.Domain_spawn ] (fun () ->
        List.init 64 (fun _ -> Fault.should_fail Fault.Domain_spawn))
  in
  check_bool "rate 0 never fails" false (List.mem true zeros)

let test_fault_trips_budgets () =
  with_fault ~seed:3 ~sites:[ Fault.Deadline_check ] (fun () ->
      let b = Budget.create () in
      check_bool "armed fault trips a live poll" true (Budget.poll b);
      match Budget.tripped b with
      | Some (Budget.Injected _) -> ()
      | other ->
        Alcotest.failf "expected an injected trip, got %s"
          (match other with
           | None -> "no trip"
           | Some r -> Budget.reason_to_string r));
  check_bool "unlimited ignores the fault layer" false
    (with_fault ~seed:3 ~sites:[ Fault.Deadline_check ] (fun () ->
         Budget.poll Budget.unlimited))

(* ------------------------------------------------------------------ *)
(* Degradation ladders, rung by rung                                   *)
(* ------------------------------------------------------------------ *)

let test_treewidth_ladder () =
  let g = loose_bracket_graph () in
  let exact = Exact.treewidth g in
  (match Exact.treewidth_budgeted ~budget:(Budget.create ()) g with
   | `Exact w -> check_int "live budget: exact treewidth" exact w
   | `Degraded _ | `Exhausted _ -> Alcotest.fail "live budget must stay exact");
  match
    expect_bump "robust.fallback.tw_heuristic" (fun () ->
        Exact.treewidth_budgeted ~budget:(hand_tripped ()) g)
  with
  | `Degraded (w, r) ->
    check_bool "degraded width is an upper bound" true (w >= exact);
    Alcotest.check reason "degradation cause" Budget.Deadline r.Outcome.cause
  | `Exact _ -> Alcotest.fail "tripped budget cannot report exact"
  | `Exhausted _ -> Alcotest.fail "treewidth always has its heuristic rung"

let test_partial_count_ladders () =
  let h = Builders.path 3 and g = Builders.clique 4 in
  let exact = Brute.count h g in
  (match
     expect_bump "robust.fallback.brute_partial" (fun () ->
         Brute.count_budgeted ~budget:(hand_tripped ()) h g)
   with
   | `Exhausted (partial, r) ->
     check_bool "brute partial is a lower bound" true
       (partial >= 0 && partial <= exact);
     Alcotest.check reason "brute trip reason" Budget.Deadline r
   | `Exact _ | `Degraded _ -> Alcotest.fail "tripped brute must exhaust");
  (match
     expect_bump "robust.fallback.inj_partial" (fun () ->
         Inj.count_budgeted ~budget:(hand_tripped ()) h g)
   with
   | `Exhausted (partial, _) ->
     check_bool "inj partial is a lower bound" true
       (partial >= 0 && partial <= Inj.count h g)
   | `Exact _ | `Degraded _ -> Alcotest.fail "tripped inj must exhaust");
  let q = (Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)").query in
  match
    expect_bump "robust.fallback.ans_partial" (fun () ->
        Cq.count_answers_budgeted ~budget:(hand_tripped ()) q g)
  with
  | `Exhausted (partial, _) ->
    check_bool "answer partial is a lower bound" true
      (partial >= 0 && partial <= Cq.count_answers q g)
  | `Exact _ | `Degraded _ -> Alcotest.fail "tripped count must exhaust"

let test_td_count_ladder () =
  let h = loose_bracket_graph () and g = Builders.clique 7 in
  let exact = Td_count.count h g in
  Exact.clear_decomposition_memo ();
  (match Td_count.count_budgeted ~budget:(Budget.create ()) h g with
   | `Exact v -> check_bool "live budget: exact count" true (Bigint.equal v exact)
   | `Degraded _ | `Exhausted _ -> Alcotest.fail "live budget must stay exact");
  (* hand trip: decomposition degrades, the forked DP completes — the
     count is still exact, over the heuristic decomposition.  The
     content-addressed tier is now readable under a budget, so it must
     be emptied or the memoised total short-circuits the ladder. *)
  Exact.clear_decomposition_memo ();
  Cache.clear ();
  (match
     expect_bump "robust.fallback.td_heuristic_decomp" (fun () ->
         Td_count.count_budgeted ~budget:(hand_tripped ()) h g)
   with
   | `Degraded (v, r) ->
     check_bool "degraded count is exact" true (Bigint.equal v exact);
     Alcotest.check reason "degradation cause" Budget.Deadline r.Outcome.cause
   | `Exact _ -> Alcotest.fail "tripped budget cannot report exact"
   | `Exhausted _ ->
     Alcotest.fail "condition-free trip must reach the heuristic-DP rung");
  (* an injected allocation failure exhausts the DP itself — again the
     warm content tier would mask the fault, so empty it first *)
  Exact.clear_decomposition_memo ();
  Cache.clear ();
  match
    with_fault ~seed:5 ~sites:[ Fault.Dp_alloc ] (fun () ->
        expect_bump "robust.fallback.td_exhausted" (fun () ->
            Td_count.count_budgeted ~budget:(Budget.create ()) h g))
  with
  | `Exhausted (Budget.Injected site) ->
    Alcotest.(check string) "injected site" "dp_alloc" site
  | `Exhausted r ->
    Alcotest.failf "expected an injected trip, got %s"
      (Budget.reason_to_string r)
  | `Exact _ | `Degraded _ -> Alcotest.fail "dp_alloc fault must exhaust"

let test_nice_count_ladder () =
  let h = loose_bracket_graph () and g = Builders.clique 7 in
  let exact = Nice_count.count h g in
  check_bool "nice agrees with td" true (Bigint.equal exact (Td_count.count h g));
  Exact.clear_decomposition_memo ();
  (match
     expect_bump "robust.fallback.nice_heuristic_decomp" (fun () ->
         Nice_count.count_budgeted ~budget:(hand_tripped ()) h g)
   with
   | `Degraded (v, _) ->
     check_bool "degraded nice count is exact" true (Bigint.equal v exact)
   | `Exact _ | `Exhausted _ ->
     Alcotest.fail "condition-free trip must reach the heuristic-DP rung");
  (* a cancelled token is a standing condition: the forked DP re-trips
     at its first poll and the ladder bottoms out *)
  Exact.clear_decomposition_memo ();
  match
    expect_bump "robust.fallback.nice_exhausted" (fun () ->
        Nice_count.count_budgeted ~budget:(cancelled_budget ()) h g)
  with
  | `Exhausted r -> Alcotest.check reason "re-trip reason" Budget.Cancelled r
  | `Exact _ | `Degraded _ ->
    Alcotest.fail "cancelled token must exhaust the whole ladder"

let test_td_spawn_demotion () =
  if Domain.recommended_domain_count () <= 1 then ()
  else begin
    let h = Builders.path 6 and g = Builders.clique 6 in
    let exact = Td_count.count h g in
    let saved = !Td_count.parallel_threshold in
    Td_count.parallel_threshold := 0;
    Fun.protect
      ~finally:(fun () -> Td_count.parallel_threshold := saved)
      (fun () ->
         match
           with_fault ~seed:9 ~sites:[ Fault.Domain_spawn ] (fun () ->
               expect_bump "robust.fallback.td_seq_resume" (fun () ->
                   Td_count.count_budgeted ~budget:(Budget.create ()) h g))
         with
         | `Exact v ->
           check_bool "demoted strides, byte-identical count" true
             (Bigint.equal v exact)
         | `Degraded _ | `Exhausted _ ->
           Alcotest.fail "spawn demotion must not change the outcome")
  end

let test_kwl_ladder () =
  (* pre-tripped: the initial colouring aborts with no usable prefix *)
  (match
     expect_bump "robust.fallback.kwl_exhausted" (fun () ->
         Kwl.run_budgeted ~budget:(hand_tripped ()) 2 (Builders.cycle 8))
   with
   | `Exhausted r -> Alcotest.check reason "kwl trip reason" Budget.Deadline r
   | `Exact _ | `Degraded _ -> Alcotest.fail "tripped kwl must exhaust");
  (* a cancelled token noticed mid-refinement keeps the completed
     rounds as a sound stable-colour prefix *)
  let g = Builders.cycle 16 in
  let full = Kwl.run 2 g in
  match
    expect_bump "robust.fallback.kwl_prefix" (fun () ->
        Kwl.run_budgeted ~budget:(cancelled_budget ()) 2 g)
  with
  | `Degraded (r, why) ->
    check_bool "prefix stopped early" true (r.Kwl.rounds < full.Kwl.rounds);
    check_bool "prefix is coarser" true
      (r.Kwl.num_colours <= full.Kwl.num_colours);
    Alcotest.check reason "prefix cause" Budget.Cancelled why.Outcome.cause
  | `Exact _ -> Alcotest.fail "cancelled token must degrade the run"
  | `Exhausted _ ->
    Alcotest.fail "C16 initial colouring fits under the first poll interval"

let test_kwl_spawn_demotion () =
  let g1 = Builders.cycle 12 and g2 = Builders.path 12 in
  let plain = Kwl.run_many ~domains:2 2 [ g1; g2 ] in
  let saved = !Kwl.parallel_threshold in
  Kwl.parallel_threshold := 0;
  Fun.protect
    ~finally:(fun () -> Kwl.parallel_threshold := saved)
    (fun () ->
       let demoted =
         with_fault ~seed:11 ~sites:[ Fault.Domain_spawn ] (fun () ->
             expect_bump "robust.fallback.kwl_seq_compute" (fun () ->
                 Kwl.run_many ~domains:2 2 [ g1; g2 ]))
       in
       check_bool "demoted chunks, byte-identical colours" true
         (List.for_all2
            (fun (a : Kwl.result) (b : Kwl.result) ->
               a.Kwl.colours = b.Kwl.colours
               && a.Kwl.num_colours = b.Kwl.num_colours
               && a.Kwl.rounds = b.Kwl.rounds)
            plain demoted))

(* ------------------------------------------------------------------ *)
(* Postmortem flight-recorder dumps                                    *)
(* ------------------------------------------------------------------ *)

let contains needle s =
  let n = String.length needle and h = String.length s in
  let rec go i =
    i + n <= h && (String.equal (String.sub s i n) needle || go (i + 1))
  in
  go 0

(* Arm the flight recorder with an automatic dump file around [f] (a
   scenario that must end in a trip or an injected fault), then assert
   the PR 8 acceptance contract: the dump exists, every line is strict
   JSON, and the final event names the engine it interrupted. *)
let with_postmortem ~engine f =
  let file = Filename.temp_file "wlcq_postmortem" ".jsonl" in
  Obs.set_journal true;
  Obs.set_journal_dump (Some file);
  Fun.protect
    ~finally:(fun () ->
      Obs.set_journal_dump None;
      Obs.set_journal false;
      if Sys.file_exists file then Sys.remove file)
    (fun () ->
      f ();
      check_bool "postmortem dump written" true (Sys.file_exists file);
      let contents = In_channel.with_open_bin file In_channel.input_all in
      let lines = String.split_on_char '\n' (String.trim contents) in
      check_bool "dump is non-empty" true
        (match lines with [] | [ "" ] -> false | _ -> true);
      List.iter
        (fun l ->
           check_bool "dump line is strict JSON" true (Obs.json_parseable l))
        lines;
      let last = match List.rev lines with l :: _ -> l | [] -> "" in
      check_bool "last event is a postmortem marker" true
        (contains "journal.dump" last || contains "fault.injected" last
         || contains "budget.trip" last);
      check_bool
        (Printf.sprintf "last event names the %s engine" engine)
        true
        (contains (Printf.sprintf "\"comp\":%S" engine) last))

let test_postmortem_td_fault () =
  let h = loose_bracket_graph () and g = Builders.clique 7 in
  Exact.clear_decomposition_memo ();
  (* the ladder tests memoised this exact (h, g) total; a warm content
     tier would answer before the DP fault can fire *)
  Cache.clear ();
  with_postmortem ~engine:"td_count.count" (fun () ->
      match
        with_fault ~seed:5 ~sites:[ Fault.Dp_alloc ] (fun () ->
            Td_count.count_budgeted ~budget:(Budget.create ()) h g)
      with
      | `Exhausted _ -> ()
      | `Exact _ | `Degraded _ -> Alcotest.fail "dp_alloc fault must exhaust")

let test_postmortem_kwl_trip () =
  with_postmortem ~engine:"kwl.run_many" (fun () ->
      match
        Kwl.run_budgeted ~budget:(cancelled_budget ()) 2 (Builders.cycle 16)
      with
      | `Degraded _ | `Exhausted _ -> ()
      | `Exact _ -> Alcotest.fail "cancelled token must not stay exact")

let test_postmortem_spawn_demotion () =
  if Domain.recommended_domain_count () <= 1 then ()
  else begin
    let h = Builders.path 6 and g = Builders.clique 6 in
    let saved = !Td_count.parallel_threshold in
    Td_count.parallel_threshold := 0;
    Fun.protect
      ~finally:(fun () -> Td_count.parallel_threshold := saved)
      (fun () ->
         with_postmortem ~engine:"td_count.count" (fun () ->
             match
               with_fault ~seed:9 ~sites:[ Fault.Domain_spawn ] (fun () ->
                   Td_count.count_budgeted ~budget:(Budget.create ()) h g)
             with
             | `Exact _ -> ()
             | `Degraded _ | `Exhausted _ ->
               Alcotest.fail "spawn demotion must not change the outcome"))
  end

let test_cfi_cloning_ladder () =
  let base = Builders.cycle 5 in
  let even = Cfi.even base in
  (match Cfi.build_budgeted ~budget:(Budget.create ()) base (Bitset.create 5) with
   | `Exact t ->
     check_int "live build matches even" (Cfi.num_vertices even)
       (Cfi.num_vertices t)
   | `Degraded _ | `Exhausted _ -> Alcotest.fail "live build must stay exact");
  (match
     expect_bump "robust.fallback.cfi_abandoned" (fun () ->
         Cfi.build_budgeted ~budget:(hand_tripped ()) base (Bitset.create 5))
   with
   | `Exhausted _ -> ()
   | `Exact _ | `Degraded _ ->
     Alcotest.fail "CFI builds are all-or-nothing under a tripped budget");
  match
    expect_bump "robust.fallback.clone_abandoned" (fun () ->
        Cloning.clone_budgeted ~budget:(hand_tripped ())
          ~g:even.Cfi.graph ~f:base ~c:even.Cfi.projection [ (0, 2) ])
  with
  | `Exhausted _ -> ()
  | `Exact _ | `Degraded _ ->
    Alcotest.fail "clones are all-or-nothing under a tripped budget"

let test_dimension_interval () =
  let q = (Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)").query in
  let exact = Wl_dimension.dimension q in
  (match Wl_dimension.dimension_budgeted ~budget:(Budget.create ()) q with
   | `Exact d -> check_int "live budget: exact dimension" exact d
   | `Degraded _ | `Exhausted _ -> Alcotest.fail "live budget must stay exact");
  match
    expect_bump "robust.fallback.dim_interval" (fun () ->
        Wl_dimension.dimension_budgeted ~budget:(hand_tripped ()) q)
  with
  | `Exhausted ((lo, hi), _) ->
    check_bool "certified interval contains the dimension" true
      (lo <= exact && exact <= hi)
  | `Exact _ -> Alcotest.fail "tripped budget cannot report exact"
  | `Degraded _ -> Alcotest.fail "dimension never degrades to a point value"

let test_fast_count_ladder () =
  let q = (Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)").query in
  let g = Builders.clique 5 in
  let exact = Fast_count.count_answers q g in
  (match Fast_count.count_answers_budgeted ~budget:(Budget.create ()) q g with
   | `Exact v -> check_bool "live budget: exact count" true (Bigint.equal v exact)
   | `Degraded _ | `Exhausted _ -> Alcotest.fail "live budget must stay exact");
  match
    expect_bump "robust.fallback.fast_exhausted" (fun () ->
        Fast_count.count_answers_budgeted ~budget:(hand_tripped ()) q g)
  with
  | `Exhausted _ -> ()
  | `Exact _ | `Degraded _ -> Alcotest.fail "tripped DP must exhaust"

let test_kg_ladder () =
  let g =
    Kspec.parse_exn "6 ; edges 0-0>1 1-0>2 2-0>3 3-0>4 4-0>5 5-0>0"
  in
  (match
     expect_bump "robust.fallback.kg_exhausted" (fun () ->
         Kg_kwl.run_budgeted ~budget:(hand_tripped ()) 2 g)
   with
   | `Exhausted _ -> ()
   | `Exact _ | `Degraded _ -> Alcotest.fail "tripped kg run must exhaust");
  let full = Kg_kwl.run 2 g in
  match
    expect_bump "robust.fallback.kg_prefix" (fun () ->
        Kg_kwl.run_budgeted ~budget:(cancelled_budget ()) 2 g)
  with
  | `Degraded (r, why) ->
    check_bool "kg prefix stopped at or before the stable round" true
      (r.Kg_kwl.rounds <= full.Kg_kwl.rounds);
    Alcotest.check reason "kg prefix cause" Budget.Cancelled why.Outcome.cause
  | `Exact _ -> Alcotest.fail "cancelled token must degrade the kg run"
  | `Exhausted _ -> Alcotest.fail "the atomic typing fits under one poll"

(* ------------------------------------------------------------------ *)
(* Responsiveness: 1 ms deadlines answer within 50 ms                  *)
(* ------------------------------------------------------------------ *)

let elapsed_ms f =
  let t0 = Obs.now_ns () in
  let r = f () in
  (r, Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6)

let check_prompt name outcome_ms =
  let (_ : unit), ms = outcome_ms in
  check_bool (Printf.sprintf "%s answers within 50 ms (took %.1f)" name ms)
    true (ms <= 50.0)

let test_deadline_responsiveness () =
  let rng = Prng.create 17 in
  let big = Gen.gnp rng 26 0.35 in
  check_prompt "optimal_decomposition_budgeted"
    (elapsed_ms (fun () ->
         Exact.clear_decomposition_memo ();
         let b = Budget.create ~deadline_ms:1.0 () in
         ignore (Exact.optimal_decomposition_budgeted ~budget:b big)));
  check_prompt "Brute.count_budgeted"
    (elapsed_ms (fun () ->
         let b = Budget.create ~deadline_ms:1.0 () in
         ignore (Brute.count_budgeted ~budget:b (Builders.cycle 5)
                   (Builders.clique 16))));
  check_prompt "Td_count.count_budgeted"
    (elapsed_ms (fun () ->
         Exact.clear_decomposition_memo ();
         let b = Budget.create ~deadline_ms:1.0 () in
         ignore (Td_count.count_budgeted ~budget:b (Builders.path 8)
                   (Gen.gnp rng 40 0.3))));
  check_prompt "Kwl.run_budgeted"
    (elapsed_ms (fun () ->
         let b = Budget.create ~deadline_ms:1.0 () in
         ignore (Kwl.run_budgeted ~budget:b 3 (Gen.gnp rng 20 0.5))));
  check_prompt "Cfi.build_budgeted"
    (elapsed_ms (fun () ->
         let b = Budget.create ~deadline_ms:1.0 () in
         ignore (Cfi.build_budgeted ~budget:b (Builders.star 22)
                   (Bitset.create 23))));
  check_prompt "Wl_dimension.dimension_budgeted"
    (elapsed_ms (fun () ->
         Exact.clear_decomposition_memo ();
         let b = Budget.create ~deadline_ms:1.0 () in
         let q = Cq.make (Gen.gnp rng 10 0.4) [ 0; 1 ] in
         ignore (Wl_dimension.dimension_budgeted ~budget:b q)))

(* ------------------------------------------------------------------ *)
(* Properties: containment and budget-off differentials                *)
(* ------------------------------------------------------------------ *)

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* (graph seed, budget mode): 0 = unlimited, 1 = hand trip,
   2 = cancelled token *)
let scenario =
  QCheck.make
    ~print:(fun (s, m) -> Printf.sprintf "seed %d, mode %d" s m)
    QCheck.Gen.(pair (int_bound 10_000) (int_bound 2))

let budget_of_mode = function
  | 0 -> Budget.unlimited
  | 1 -> hand_tripped ()
  | _ -> cancelled_budget ()

let graph_of_seed s =
  let rng = Prng.create (1 + s) in
  let n = 4 + (s mod 7) in
  Gen.gnp rng n 0.4

let prop_brute_containment =
  qtest "Brute.count_budgeted bounds contain the exact count" scenario
    (fun (s, mode) ->
       let g = graph_of_seed s in
       let h = Builders.path (2 + (s mod 3)) in
       let exact = Brute.count h g in
       match Brute.count_budgeted ~budget:(budget_of_mode mode) h g with
       | `Exact v -> v = exact
       | `Degraded _ -> false
       | `Exhausted (partial, _) -> 0 <= partial && partial <= exact)

let prop_treewidth_containment =
  qtest "treewidth_budgeted degraded widths are upper bounds" scenario
    (fun (s, mode) ->
       let g = graph_of_seed s in
       let exact = Exact.treewidth g in
       match Exact.treewidth_budgeted ~budget:(budget_of_mode mode) g with
       | `Exact w -> w = exact
       | `Degraded (w, _) -> w >= exact
       | `Exhausted _ -> false)

let prop_td_count_containment =
  qtest "Td_count.count_budgeted sound values are exact" scenario
    (fun (s, mode) ->
       let g = graph_of_seed s in
       let h = Builders.cycle (3 + (s mod 2)) in
       let exact = Td_count.count h g in
       Exact.clear_decomposition_memo ();
       match Td_count.count_budgeted ~budget:(budget_of_mode mode) h g with
       | `Exact v | `Degraded (v, _) -> Bigint.equal v exact
       | `Exhausted _ -> mode <> 0)

let prop_dimension_containment =
  qtest ~count:40 "dimension_budgeted intervals contain the dimension"
    scenario
    (fun (s, mode) ->
       let q = Cq.make (graph_of_seed s) [ 0 ] in
       let exact = Wl_dimension.dimension q in
       match Wl_dimension.dimension_budgeted ~budget:(budget_of_mode mode) q with
       | `Exact d -> d = exact
       | `Degraded _ -> false
       | `Exhausted ((lo, hi), _) -> lo <= exact && exact <= hi)

let prop_budget_off_identical =
  qtest ~count:60 "unlimited budgets are byte-identical to no budget"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun s ->
       let g = graph_of_seed s in
       let h = Builders.path 3 in
       let b = Budget.unlimited in
       let tw_ok =
         match Exact.treewidth_budgeted ~budget:b g with
         | `Exact w -> w = Exact.treewidth g
         | `Degraded _ | `Exhausted _ -> false
       in
       let brute_ok =
         match Brute.count_budgeted ~budget:b h g with
         | `Exact v -> v = Brute.count h g
         | `Degraded _ | `Exhausted _ -> false
       in
       let td_ok =
         match Td_count.count_budgeted ~budget:b h g with
         | `Exact v -> Bigint.equal v (Td_count.count h g)
         | `Degraded _ | `Exhausted _ -> false
       in
       let kwl_ok =
         match Kwl.run_budgeted ~budget:b 2 g with
         | `Exact r ->
           let plain = Kwl.run 2 g in
           r.Kwl.colours = plain.Kwl.colours
           && r.Kwl.num_colours = plain.Kwl.num_colours
           && r.Kwl.rounds = plain.Kwl.rounds
         | `Degraded _ | `Exhausted _ -> false
       in
       tw_ok && brute_ok && td_ok && kwl_ok)

(* ------------------------------------------------------------------ *)
(* Parser fuzzing: random bytes must come back as Ok/Error, never as   *)
(* an escaped exception                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_input =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      let any_byte = map Char.chr (int_range 0 255) in
      let structured =
        oneofl
          [ "("; ")"; ":="; "exists"; "."; "&"; "E"; ","; "|"; ";"; "-";
            ">"; "edges"; "labels"; "x1"; "0"; "-0x1"; "9999999999999999999";
            " "; "cycle:"; "gnp:"; "\x00"; "\xff" ]
      in
      map (String.concat "")
        (list_size (int_bound 12)
           (oneof [ structured; map (String.make 1) any_byte ])))

let total name f =
  qtest ~count:400 name fuzz_input (fun s ->
      match f s with _ -> true)

let fuzz_parsers =
  [
    total "Parser.parse total" Parser.parse;
    total "Parser.parse_union total" Parser.parse_union;
    total "Ucq.of_string total" Ucq.of_string;
    total "Kparser.parse total" (fun s -> Kparser.parse s);
    total "Spec.parse total" Spec.parse;
    total "Kspec.parse total" Kspec.parse;
  ]

(* ------------------------------------------------------------------ *)

let () =
  Obs.set_enabled true;
  Alcotest.run "robust"
    [
      ( "budget",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "trip latch" `Quick test_trip_latch;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "deadline trips" `Quick test_deadline_trips;
          Alcotest.test_case "remaining_ns" `Quick test_remaining_ns;
          Alcotest.test_case "unlimited inert" `Quick test_unlimited_inert;
          Alcotest.test_case "fork" `Quick test_fork;
          Alcotest.test_case "tick interval" `Quick test_tick_interval_poll;
        ] );
      ( "fault",
        [
          Alcotest.test_case "arm/disarm" `Quick test_fault_arm_disarm;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "trips budgets" `Quick test_fault_trips_budgets;
        ] );
      ( "ladders",
        [
          Alcotest.test_case "treewidth" `Quick test_treewidth_ladder;
          Alcotest.test_case "partial counts" `Quick test_partial_count_ladders;
          Alcotest.test_case "td_count" `Quick test_td_count_ladder;
          Alcotest.test_case "nice_count" `Quick test_nice_count_ladder;
          Alcotest.test_case "td spawn demotion" `Quick test_td_spawn_demotion;
          Alcotest.test_case "kwl" `Quick test_kwl_ladder;
          Alcotest.test_case "kwl spawn demotion" `Quick
            test_kwl_spawn_demotion;
          Alcotest.test_case "cfi/cloning" `Quick test_cfi_cloning_ladder;
          Alcotest.test_case "dimension interval" `Quick
            test_dimension_interval;
          Alcotest.test_case "fast_count" `Quick test_fast_count_ladder;
          Alcotest.test_case "kg" `Quick test_kg_ladder;
        ] );
      ( "postmortem",
        [
          Alcotest.test_case "injected DP fault dumps the journal" `Quick
            test_postmortem_td_fault;
          Alcotest.test_case "kwl budget trip dumps the journal" `Quick
            test_postmortem_kwl_trip;
          Alcotest.test_case "spawn demotion dumps the journal" `Quick
            test_postmortem_spawn_demotion;
        ] );
      ( "responsiveness",
        [
          Alcotest.test_case "1 ms deadlines" `Quick
            test_deadline_responsiveness;
        ] );
      ( "properties",
        [
          prop_brute_containment;
          prop_treewidth_containment;
          prop_td_count_containment;
          prop_dimension_containment;
          prop_budget_off_identical;
        ] );
      ("fuzz", fuzz_parsers);
    ]
