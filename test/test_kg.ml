open Wlcq_kg
module G = Wlcq_graph
module Core = Wlcq_core
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a small social-network-style knowledge graph:
   labels: 1 = Person, 2 = Company
   relations: 0 = knows, 1 = worksAt *)
let social () =
  Kgraph.create ~n:5
    ~vertex_labels:[| 1; 1; 1; 2; 2 |]
    ~edges:
      [ (0, 1, 0); (1, 0, 0); (1, 2, 0);  (* knows *)
        (0, 3, 1); (1, 3, 1); (2, 4, 1) ] (* worksAt *)

(* ------------------------------------------------------------------ *)
(* Kgraph                                                              *)
(* ------------------------------------------------------------------ *)

let test_kgraph_basics () =
  let g = social () in
  check_int "vertices" 5 (Kgraph.num_vertices g);
  check_int "edges" 6 (Kgraph.num_edges g);
  check_bool "directed edge present" true (Kgraph.has_edge g 0 1 0);
  check_bool "reverse not implied" false (Kgraph.has_edge g 2 1 0);
  check_bool "label matters" false (Kgraph.has_edge g 0 1 1);
  check_int "vertex label" 2 (Kgraph.vertex_label g 3);
  Alcotest.(check (list int)) "edge labels" [ 0; 1 ] (Kgraph.edge_labels g)

let test_kgraph_validation () =
  check_bool "self-loop rejected" true
    (try
       ignore (Kgraph.create ~n:2 ~vertex_labels:[| 0; 0 |]
                 ~edges:[ (1, 1, 0) ]);
       false
     with Invalid_argument _ -> true);
  check_bool "label array size" true
    (try
       ignore (Kgraph.create ~n:2 ~vertex_labels:[| 0 |] ~edges:[]);
       false
     with Invalid_argument _ -> true)

let test_kgraph_parallel_edges () =
  (* parallel edges with distinct labels are allowed and kept *)
  let g =
    Kgraph.create ~n:2 ~vertex_labels:[| 0; 0 |]
      ~edges:[ (0, 1, 0); (0, 1, 1); (0, 1, 0) ]
  in
  check_int "two labelled edges after dedup" 2 (Kgraph.num_edges g);
  check_int "underlying has one edge" 1
    (G.Graph.num_edges (Kgraph.underlying g))

let test_kgraph_encoding () =
  let g = G.Builders.petersen () in
  let kg = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
  check_int "both directions" 30 (Kgraph.num_edges kg);
  check_bool "underlying round trip" true
    (G.Graph.equal (Kgraph.underlying kg) g)

(* ------------------------------------------------------------------ *)
(* Khom                                                                *)
(* ------------------------------------------------------------------ *)

let test_khom_direction_sensitive () =
  (* pattern u -r-> v embeds along each directed edge only *)
  let pattern =
    Kgraph.create ~n:2 ~vertex_labels:[| 1; 2 |] ~edges:[ (0, 1, 1) ]
  in
  let g = social () in
  (* worksAt edges from Person to Company: exactly 3 *)
  check_int "typed directed edge count" 3 (Khom.count pattern g);
  (* reversed pattern finds nothing *)
  let reversed =
    Kgraph.create ~n:2 ~vertex_labels:[| 2; 1 |] ~edges:[ (0, 1, 1) ]
  in
  check_int "reversed pattern" 0 (Khom.count reversed g)

let test_khom_labels_enforced () =
  let pattern =
    Kgraph.create ~n:2 ~vertex_labels:[| 1; 1 |] ~edges:[ (0, 1, 0) ]
  in
  (* knows edges: (0,1) (1,0) (1,2) -> 3 homs *)
  check_int "knows edges" 3 (Khom.count pattern (social ()));
  (* wrong vertex label: no homs *)
  let wrong =
    Kgraph.create ~n:2 ~vertex_labels:[| 2; 1 |] ~edges:[ (0, 1, 0) ]
  in
  check_int "wrong label" 0 (Khom.count wrong (social ()))

let test_khom_matches_plain_on_encoding () =
  let rng = Prng.create 77 in
  for _ = 1 to 10 do
    let h = G.Gen.gnp rng 4 0.5 in
    let g = G.Gen.gnp rng 5 0.5 in
    let kh = Kgraph.of_graph h ~vertex_label:0 ~edge_label:0 in
    let kg = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
    check_int "khom = plain hom under encoding" (Wlcq_hom.Brute.count h g)
      (Khom.count kh kg)
  done

let test_khom_pins () =
  let pattern =
    Kgraph.create ~n:2 ~vertex_labels:[| 1; 2 |] ~edges:[ (0, 1, 1) ]
  in
  (* pin the person to vertex 1: only worksAt(1,3) matches *)
  check_int "pinned" 1 (Khom.count ~pins:[ (0, 1) ] pattern (social ()))

(* ------------------------------------------------------------------ *)
(* Kwl                                                                 *)
(* ------------------------------------------------------------------ *)

let test_kwl_matches_plain_on_encoding () =
  let enc g = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
  let pairs =
    [ (G.Builders.two_triangles (), G.Builders.cycle 6, true);
      (G.Builders.path 4, G.Builders.star 3, false);
      (G.Builders.cycle 5, G.Builders.cycle 5, true) ]
  in
  List.iter
    (fun (g1, g2, expected) ->
       check_bool "kwl k=1 matches plain" expected
         (Kwl.equivalent 1 (enc g1) (enc g2));
       check_bool "consistency with plain refinement" true
         (Kwl.equivalent 1 (enc g1) (enc g2)
          = Wlcq_wl.Equivalence.equivalent 1 g1 g2))
    pairs;
  (* 2-WL separates the classic pair, also under encoding *)
  check_bool "kwl k=2 separates 2K3/C6" false
    (Kwl.equivalent 2
       (enc (G.Builders.two_triangles ()))
       (enc (G.Builders.cycle 6)))

let test_kwl_direction_matters () =
  (* directed 3-cycle vs path-shaped orientation of the triangle:
     same underlying graph, different orientations *)
  let cyc =
    Kgraph.create ~n:3 ~vertex_labels:[| 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (2, 0, 0) ]
  in
  let acyclic =
    Kgraph.create ~n:3 ~vertex_labels:[| 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]
  in
  check_bool "underlying graphs equal" true
    (G.Graph.equal (Kgraph.underlying cyc) (Kgraph.underlying acyclic));
  check_bool "refinement separates orientations" false
    (Kwl.equivalent 1 cyc acyclic)

let test_kwl_labels_matter () =
  let a =
    Kgraph.create ~n:2 ~vertex_labels:[| 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 0, 0) ]
  in
  let b =
    Kgraph.create ~n:2 ~vertex_labels:[| 0; 0 |]
      ~edges:[ (0, 1, 1); (1, 0, 1) ]
  in
  check_bool "edge labels separate" false (Kwl.equivalent 1 a b);
  let c =
    Kgraph.create ~n:2 ~vertex_labels:[| 0; 1 |]
      ~edges:[ (0, 1, 0); (1, 0, 0) ]
  in
  check_bool "vertex labels separate" false (Kwl.equivalent 1 a c)

(* ------------------------------------------------------------------ *)
(* Kcq                                                                 *)
(* ------------------------------------------------------------------ *)

let test_kcq_answers () =
  (* colleagues: exists a company both work at *)
  let p =
    Kparser.parse_exn
      ~relations:[| "knows"; "worksAt" |]
      ~labels:[| "_"; "Person"; "Company" |]
      "(x1, x2) := exists c . worksAt(x1, c) & worksAt(x2, c) & Person(x1) & \
       Person(x2) & Company(c)"
  in
  (* in the social graph: persons 0 and 1 share company 3; person 2 is
     alone at company 4.  ordered pairs with a common company:
     (0,0),(0,1),(1,0),(1,1),(2,2) = 5 *)
  check_int "colleague pairs" 5 (Kcq.count_answers p.Kparser.query (social ()))

let test_kcq_matches_plain_on_encoding () =
  let star2 = Core.Star.query 2 in
  let kq = Kcq.of_cq star2 in
  let enc g = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
  List.iter
    (fun g ->
       check_int "kg answers = plain answers"
         (Core.Cq.count_answers star2 g)
         (Kcq.count_answers kq (enc g)))
    [ G.Builders.cycle 5; G.Builders.clique 4; G.Builders.petersen () ]

let test_kcq_widths_on_encoding () =
  List.iter
    (fun k ->
       let q = Core.Star.query k in
       let kq = Kcq.of_cq q in
       check_int "kg ew = plain ew" k (Kcq.extension_width kq);
       check_int "kg sew = plain sew" k (Kcq.semantic_extension_width kq);
       check_int "kg wl dimension" k (Kcq.wl_dimension kq))
    [ 1; 2; 3 ]

let test_kcq_direction_blocks_folding () =
  (* undirected pendant tail folds; the directed version cannot fold
     because the fold would need a reversed edge *)
  let undirected =
    (Core.Parser.parse_exn "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)")
      .Core.Parser.query
  in
  check_bool "undirected tail not minimal" false
    (Core.Minimize.is_counting_minimal undirected);
  let directed =
    Kparser.parse_exn "(x) := exists y1 y2 . r(x, y1) & r(y1, y2)"
  in
  check_bool "directed tail IS minimal" true
    (Kcq.is_counting_minimal directed.Kparser.query);
  (* but the kg encoding of the undirected query still folds *)
  check_bool "encoded undirected tail not minimal" false
    (Kcq.is_counting_minimal (Kcq.of_cq undirected))

let test_kcq_core_preserves_answers () =
  let q = Kcq.of_cq
      ((Core.Parser.parse_exn "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)")
         .Core.Parser.query)
  in
  let core = Kcq.counting_core q in
  check_bool "core smaller" true
    (Kgraph.num_vertices core.Kcq.graph < Kgraph.num_vertices q.Kcq.graph);
  let rng = Prng.create 7 in
  for _ = 1 to 5 do
    let g = Kgraph.of_graph (G.Gen.gnp rng 5 0.4) ~vertex_label:0 ~edge_label:0 in
    check_int "core counting-equivalent" (Kcq.count_answers q g)
      (Kcq.count_answers core g)
  done

let test_kcq_typed_star_dimension () =
  (* a 2-star whose two edges carry different relations still has
     sew = 2: the extension edge only needs a shared component *)
  let p = Kparser.parse_exn "(x1, x2) := exists y . knows(x1, y) & likes(x2, y)" in
  check_int "typed star ew" 2 (Kcq.extension_width p.Kparser.query);
  check_bool "typed star minimal" true
    (Kcq.is_counting_minimal p.Kparser.query);
  check_int "typed star dimension" 2 (Kcq.wl_dimension p.Kparser.query)

(* ------------------------------------------------------------------ *)
(* Kparser                                                             *)
(* ------------------------------------------------------------------ *)

let test_kparser_roundtrip () =
  let p =
    Kparser.parse_exn
      "(x, y) := exists z . knows(x, z) & worksAt(z, y) & Person(x)"
  in
  check_int "variables" 3 (Kgraph.num_vertices p.Kparser.query.Kcq.graph);
  check_int "free" 2 (Kcq.num_free p.Kparser.query);
  check_bool "vertex label applied" true
    (Kgraph.vertex_label p.Kparser.query.Kcq.graph 0 = 1);
  let printed = Kparser.to_formula p in
  let p2 = Kparser.parse_exn printed in
  check_int "reparse same edges"
    (Kgraph.num_edges p.Kparser.query.Kcq.graph)
    (Kgraph.num_edges p2.Kparser.query.Kcq.graph)

let test_kparser_errors () =
  let expect_error s =
    match Kparser.parse s with
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ s)
    | Error _ -> ()
  in
  expect_error "(x) := r(x, x)";
  expect_error "(x) := r(x, z)";
  expect_error "(x) := Person(x) & Company(x)";
  expect_error "(x, x) := r(x, y)"

let test_kspec () =
  match Kspec.parse "3; labels 1 1 2; edges 0-0>1 1-1>2" with
  | Error e -> Alcotest.fail e
  | Ok g ->
    check_int "vertices" 3 (Kgraph.num_vertices g);
    check_int "edges" 2 (Kgraph.num_edges g);
    check_bool "labelled edge" true (Kgraph.has_edge g 1 2 1);
    check_int "vertex label" 2 (Kgraph.vertex_label g 2);
    (* labels optional *)
    (match Kspec.parse "2; edges 0-0>1" with
     | Ok g -> check_int "default labels" 0 (Kgraph.vertex_label g 0)
     | Error e -> Alcotest.fail e);
    (* malformed specs *)
    List.iter
      (fun s ->
         check_bool ("rejects " ^ s) true (Result.is_error (Kspec.parse s)))
      [ ""; "x"; "2; edges 0>1"; "2; labels 0; edges"; "2; edges 0-0>2";
        "2; edges 1-0>1" ]

let kg_qcheck =
  [
    QCheck.Test.make
      ~name:"kg answer counts match plain counts under encoding" ~count:30
      QCheck.(quad (int_range 1 4) (int_range 0 2) (int_range 1 5)
                (int_bound 100000))
      (fun (nh, extra, ng, seed) ->
         let rng = Prng.create seed in
         let h = G.Gen.gnp rng (nh + extra) 0.5 in
         let q = Core.Cq.make h (List.init nh (fun i -> i)) in
         let g = G.Gen.gnp rng ng 0.5 in
         Kcq.count_answers (Kcq.of_cq q)
           (Kgraph.of_graph g ~vertex_label:0 ~edge_label:0)
         = Core.Cq.count_answers q g);
    QCheck.Test.make
      ~name:"kg 1-WL equivalence matches plain under encoding" ~count:30
      QCheck.(triple (int_range 2 6) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = G.Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = G.Gen.gnp (Prng.create s2) n 0.5 in
         let enc g = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
         Kwl.equivalent 1 (enc g1) (enc g2)
         = Wlcq_wl.Equivalence.equivalent 1 g1 g2);
    QCheck.Test.make
      ~name:"kg 2-WL equivalence matches plain under encoding" ~count:15
      QCheck.(triple (int_range 2 5) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = G.Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = G.Gen.gnp (Prng.create s2) n 0.5 in
         let enc g = Kgraph.of_graph g ~vertex_label:0 ~edge_label:0 in
         Kwl.equivalent 2 (enc g1) (enc g2)
         = Wlcq_wl.Equivalence.equivalent 2 g1 g2);
  ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_kg"
    [
      ( "kgraph",
        [
          Alcotest.test_case "basics" `Quick test_kgraph_basics;
          Alcotest.test_case "validation" `Quick test_kgraph_validation;
          Alcotest.test_case "parallel edges" `Quick test_kgraph_parallel_edges;
          Alcotest.test_case "encoding" `Quick test_kgraph_encoding;
        ] );
      ( "khom",
        [
          Alcotest.test_case "direction sensitive" `Quick
            test_khom_direction_sensitive;
          Alcotest.test_case "labels enforced" `Quick test_khom_labels_enforced;
          Alcotest.test_case "matches plain" `Quick
            test_khom_matches_plain_on_encoding;
          Alcotest.test_case "pins" `Quick test_khom_pins;
        ] );
      ( "kwl",
        [
          Alcotest.test_case "matches plain" `Quick
            test_kwl_matches_plain_on_encoding;
          Alcotest.test_case "direction matters" `Quick
            test_kwl_direction_matters;
          Alcotest.test_case "labels matter" `Quick test_kwl_labels_matter;
        ] );
      ( "kcq",
        [
          Alcotest.test_case "answers" `Quick test_kcq_answers;
          Alcotest.test_case "matches plain" `Quick
            test_kcq_matches_plain_on_encoding;
          Alcotest.test_case "widths on encoding" `Quick
            test_kcq_widths_on_encoding;
          Alcotest.test_case "direction blocks folding" `Quick
            test_kcq_direction_blocks_folding;
          Alcotest.test_case "core preserves answers" `Quick
            test_kcq_core_preserves_answers;
          Alcotest.test_case "typed star dimension" `Quick
            test_kcq_typed_star_dimension;
        ] );
      ( "kparser",
        [
          Alcotest.test_case "roundtrip" `Quick test_kparser_roundtrip;
          Alcotest.test_case "errors" `Quick test_kparser_errors;
        ] );
      ( "kspec", [ Alcotest.test_case "parse" `Quick test_kspec ] );
      qsuite "properties" kg_qcheck;
    ]
