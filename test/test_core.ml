open Wlcq_core
open Wlcq_graph
module Bigint = Wlcq_util.Bigint
module Rat = Wlcq_util.Rat
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse s = (Parser.parse_exn s).Parser.query

(* frequently used queries *)
let star2 = Star.query 2
let star3 = Star.query 3
let edge_query = parse "(x1, x2) := E(x1, x2)"
let path2_query = parse "(x1, x2) := exists y . E(x1, y) & E(y, x2)"

(* ------------------------------------------------------------------ *)
(* Cq basics                                                           *)
(* ------------------------------------------------------------------ *)

let test_cq_make_validation () =
  Alcotest.check_raises "duplicate free var"
    (Invalid_argument "Cq.make: duplicate free variable") (fun () ->
        ignore (Cq.make (Builders.path 3) [ 0; 0 ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cq.make: free variable out of range") (fun () ->
        ignore (Cq.make (Builders.path 3) [ 5 ]))

let test_cq_classification () =
  check_bool "full" true (Cq.is_full (Cq.make (Builders.path 3) [ 0; 1; 2 ]));
  check_bool "boolean" true (Cq.is_boolean (Cq.make (Builders.path 3) []));
  check_bool "star connected" true (Cq.is_connected star3);
  check_int "star3 free count" 3 (Cq.num_free star3);
  Alcotest.(check (array int)) "quantified vars" [| 3 |]
    (Cq.quantified_vars star3)

let test_full_query_answers_are_homs () =
  (* for full queries |Ans| = |Hom| *)
  let h = Builders.path 3 in
  let q = Cq.make h [ 0; 1; 2 ] in
  let g = Builders.cycle 5 in
  check_int "full query = hom count" (Wlcq_hom.Brute.count h g)
    (Cq.count_answers q g)

let test_boolean_query_decision () =
  let q = Cq.make (Builders.cycle 3) [] in
  check_int "triangle exists in K4" 1 (Cq.count_answers q (Builders.clique 4));
  check_int "no triangle in C6" 0 (Cq.count_answers q (Builders.cycle 6))

let test_star_answers_semantics () =
  (* answers of the k-star = tuples with a common neighbour *)
  List.iter
    (fun g ->
       List.iter
         (fun k ->
            check_int "star answers"
              (Star.count_common_neighbour_tuples g k)
              (Cq.count_answers (Star.query k) g))
         [ 1; 2; 3 ])
    [ Builders.cycle 5; Builders.clique 4; Builders.star 4;
      Builders.two_triangles () ]

let test_count_answers_known () =
  (* S2 on C5: 5 equal pairs + 10 ordered distance-2 pairs *)
  check_int "S2 on C5" 15 (Cq.count_answers star2 (Builders.cycle 5));
  (* edge query on Petersen: 2m = 30 *)
  check_int "edge query" 30 (Cq.count_answers edge_query (Builders.petersen ()));
  (* path2 on K3: all 9 pairs have a common neighbour *)
  check_int "path2 on K3" 9 (Cq.count_answers path2_query (Builders.clique 3))

let test_injective_answers () =
  (* injective S2 answers on C5 exclude the 5 diagonal pairs *)
  check_int "injective star answers" 10
    (Cq.count_answers_injective star2 (Builders.cycle 5));
  check_bool "injective <= all" true
    (Cq.count_answers_injective star3 (Builders.clique 4)
     <= Cq.count_answers star3 (Builders.clique 4))

let test_query_isomorphism () =
  (* same star with permuted labels *)
  let q1 = Star.query 3 in
  let q2 = Cq.make (Graph.create 4 [ (1, 0); (2, 0); (3, 0) ]) [ 1; 2; 3 ] in
  check_bool "relabelled star isomorphic" true (Cq.isomorphic q1 q2);
  (* same graph, different free set: not isomorphic as queries *)
  let q3 = Cq.make (Builders.star 3) [ 0; 1; 2 ] in
  let q4 = Cq.make (Builders.star 3) [ 1; 2; 3 ] in
  check_bool "different free sets" false (Cq.isomorphic q3 q4);
  check_bool "edge vs path2" false (Cq.isomorphic edge_query path2_query)

let test_partial_automorphisms () =
  (* Aut(S_k, X_k) = all k! permutations of the leaves *)
  check_int "Aut(S3,X3)" 6 (List.length (Cq.partial_automorphisms star3));
  (* path with both ends free: identity and the flip *)
  let q = parse "(x1, x2) := exists y . E(x1, y) & E(y, x2)" in
  check_int "Aut(path2)" 2 (List.length (Cq.partial_automorphisms q));
  (* asymmetric: free end vs quantified end of an edge+pendant *)
  let q = parse "(x1) := exists y1 y2 . E(x1, y1) & E(y1, y2)" in
  check_int "Aut(pendant)" 1 (List.length (Cq.partial_automorphisms q))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_roundtrip () =
  let p = Parser.parse_exn "(x1, x2) := exists y . E(x1, y) & E(x2, y)" in
  check_string "roundtrip" "(x1, x2) := exists y . E(x1, y) & E(x2, y)"
    (Parser.to_formula ~names:p.Parser.names p.Parser.query);
  check_bool "parsed star2 isomorphic to built star2" true
    (Cq.isomorphic p.Parser.query star2)

let test_parser_errors () =
  let expect_error s =
    match Parser.parse s with
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ s)
    | Error _ -> ()
  in
  expect_error "(x) := E(x, x)";
  expect_error "(x) := E(x, z)";
  expect_error "(x, x) := E(x, y)";
  expect_error "x := E(x, y)";
  expect_error "(x) := exists . E(x, y)";
  expect_error "(x) :=";
  expect_error "(x) := E(x y)"

let test_parser_whitespace_insensitive () =
  let a = parse "(x1,x2):=exists y.E(x1,y)&E(x2,y)" in
  let b = parse "( x1 , x2 ) :=  exists  y .  E( x1 , y ) & E( x2 , y )" in
  check_bool "whitespace irrelevant" true (Cq.isomorphic a b)

(* ------------------------------------------------------------------ *)
(* Minimize (counting cores)                                           *)
(* ------------------------------------------------------------------ *)

let test_minimal_examples () =
  check_bool "stars minimal" true (Minimize.is_counting_minimal star3);
  check_bool "edge minimal" true (Minimize.is_counting_minimal edge_query);
  check_bool "full queries always minimal" true
    (Minimize.is_counting_minimal (Cq.make (Builders.path 4) [ 0; 1; 2; 3 ]))

let test_nonminimal_pendant () =
  (* (x) := exists y1 y2 . E(x,y1) & E(y1,y2): the tail folds back *)
  let q = parse "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)" in
  check_bool "pendant tail not minimal" false (Minimize.is_counting_minimal q);
  let core = Minimize.counting_core q in
  check_int "core is a single edge" 2 (Graph.num_vertices core.Cq.graph);
  check_bool "core isomorphic to (x) := exists y . E(x,y)" true
    (Cq.isomorphic core (parse "(x) := exists y . E(x, y)"))

let test_core_preserves_answers () =
  let queries =
    [
      parse "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)";
      parse "(x1, x2) := exists y1 y2 . E(x1, y1) & E(x2, y1) & E(x1, y2)";
      parse "(x) := exists y1 y2 y3 . E(x, y1) & E(y1, y2) & E(y2, y3)";
    ]
  in
  let rng = Prng.create 99 in
  List.iter
    (fun q ->
       let core = Minimize.counting_core q in
       for _ = 1 to 5 do
         let g = Gen.gnp rng 6 0.4 in
         check_int "core counting-equivalent" (Cq.count_answers q g)
           (Cq.count_answers core g)
       done)
    queries

let test_shrinking_endomorphism_properties () =
  let q = parse "(x) := exists y1 y2 . E(x, y1) & E(y1, y2)" in
  match Minimize.shrinking_endomorphism q with
  | None -> Alcotest.fail "expected a shrinking endomorphism"
  | Some endo ->
    check_bool "is an endomorphism" true
      (Wlcq_hom.Brute.is_homomorphism q.Cq.graph q.Cq.graph endo);
    check_int "fixes the free variable" 0 endo.(0);
    let image = List.sort_uniq Int.compare (Array.to_list endo) in
    check_bool "proper image" true
      (List.length image < Graph.num_vertices q.Cq.graph)

let minimize_qcheck =
  [
    QCheck.Test.make ~name:"core has answers equal to original" ~count:30
      QCheck.(pair (int_range 2 5) (int_bound 100000))
      (fun (nh, seed) ->
         let rng = Prng.create seed in
         let h = Gen.random_connected rng nh 0.3 in
         let q = Cq.make h [ 0 ] in
         let core = Minimize.counting_core q in
         let g = Gen.gnp rng 5 0.5 in
         Cq.count_answers q g = Cq.count_answers core g);
    QCheck.Test.make ~name:"core is minimal and no smaller than needed"
      ~count:30
      QCheck.(pair (int_range 2 5) (int_bound 100000))
      (fun (nh, seed) ->
         let rng = Prng.create seed in
         let h = Gen.random_connected rng nh 0.3 in
         let q = Cq.make h [ 0 ] in
         let core = Minimize.counting_core q in
         Minimize.is_counting_minimal core
         && Graph.num_vertices core.Cq.graph <= nh);
  ]

(* ------------------------------------------------------------------ *)
(* Extension width machinery                                           *)
(* ------------------------------------------------------------------ *)

let test_gamma_star_clique () =
  for k = 1 to 5 do
    check_bool (Printf.sprintf "Gamma(S%d) = K%d" k (k + 1)) true
      (Star.gamma_is_clique k)
  done

let test_gamma_no_quantified () =
  (* full queries: Γ(H, V(H)) = H *)
  let h = Builders.cycle 5 in
  let q = Cq.make h [ 0; 1; 2; 3; 4 ] in
  check_bool "gamma of full query" true (Graph.equal (Extension.gamma_graph q) h)

let test_gamma_two_components () =
  (* two separate quantified components touching different free pairs *)
  let q =
    parse
      "(x1, x2, x3) := exists y1 y2 . E(x1, y1) & E(x2, y1) & E(x2, y2) & \
       E(x3, y2)"
  in
  let gamma = Extension.gamma_graph q in
  check_bool "x1-x2 added" true (Graph.adjacent gamma 0 1);
  check_bool "x2-x3 added" true (Graph.adjacent gamma 1 2);
  check_bool "x1-x3 not added" false (Graph.adjacent gamma 0 2)

let test_widths_known () =
  check_int "ew(S3)" 3 (Extension.extension_width star3);
  check_int "sew(S3)" 3 (Extension.semantic_extension_width star3);
  check_int "ew(edge)" 1 (Extension.extension_width edge_query);
  check_int "ew(path2)" 2 (Extension.extension_width path2_query);
  check_int "qss(S3)" 3 (Extension.quantified_star_size star3);
  check_int "qss(full)" 0
    (Extension.quantified_star_size (Cq.make (Builders.path 3) [ 0; 1; 2 ]))

let test_f_ell_structure () =
  (* F_ℓ(S_k) = K_{k,ℓ} *)
  let fe = Extension.f_ell star3 4 in
  check_bool "F_4(S3) = K_{3,4}" true
    (Iso.isomorphic fe.Extension.graph (Builders.complete_bipartite 3 4));
  check_bool "gamma homomorphism" true
    (Extension.gamma_is_homomorphism fe star3);
  (* F_1 = H *)
  let fe1 = Extension.f_ell star3 1 in
  check_bool "F_1 isomorphic to H" true
    (Iso.isomorphic fe1.Extension.graph star3.Cq.graph)

let test_corollary18 () =
  (* ew = max_ℓ tw(F_ℓ), and tw(F_ℓ) <= ew for every ℓ (Lemma 16) *)
  List.iter
    (fun q ->
       let ew = Extension.extension_width q in
       for ell = 1 to 5 do
         check_bool "Lemma 16: tw(F_ell) <= ew" true
           (Wlcq_treewidth.Exact.treewidth (Extension.f_ell q ell).Extension.graph
            <= ew)
       done;
       check_int "Corollary 18: max tw(F_ell) = ew" ew
         (Extension.ew_via_f_ell q ~max_ell:6))
    [ star2; star3; path2_query; edge_query;
      parse "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)" ]

let test_saturating_ell () =
  (* for S_k, tw(K_{k,ℓ}) = min(k,ℓ) so the first saturating ℓ is k *)
  check_int "saturating ell of S2" 2 (Extension.minimal_saturating_ell star2);
  check_int "saturating ell of S3" 3 (Extension.minimal_saturating_ell star3);
  check_int "saturating ell of edge query" 1
    (Extension.minimal_saturating_ell edge_query)

let test_contract () =
  (* contract of S_k is K_k *)
  check_bool "contract(S3) = K3" true
    (Iso.isomorphic (Extension.contract star3) (Builders.clique 3))

let test_gen_query () =
  let rng = Prng.create 17 in
  for _ = 1 to 10 do
    let q = Gen_query.random_connected rng ~num_vars:6 ~num_free:2
        ~edge_prob:0.3 in
    check_bool "generated query connected" true (Cq.is_connected q);
    check_int "generated arity" 2 (Cq.num_free q)
  done;
  let q = Gen_query.random_star_like rng ~num_free:3 ~centres:2 in
  check_bool "star-like connected" true (Cq.is_connected q);
  check_int "star-like free" 3 (Cq.num_free q);
  (* quantified paths: sew = 2 at every length *)
  List.iter
    (fun len ->
       let q = Gen_query.quantified_path len in
       check_bool "quantified path connected" true (Cq.is_connected q);
       check_int "quantified path sew" 2
         (Extension.semantic_extension_width q))
    [ 1; 2; 3; 4 ];
  check_bool "quantified path 2 isomorphic to parsed version" true
    (Cq.isomorphic (Gen_query.quantified_path 2)
       (parse "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)"))

let extension_qcheck =
  let random_query rng nh nfree =
    let h = Gen.random_connected rng nh 0.3 in
    let vs = Array.init nh (fun i -> i) in
    Prng.shuffle rng vs;
    Cq.make h (Array.to_list (Array.sub vs 0 nfree))
  in
  [
    QCheck.Test.make ~name:"sew <= ew" ~count:40
      QCheck.(triple (int_range 2 6) (int_range 1 3) (int_bound 100000))
      (fun (nh, nfree, seed) ->
         let rng = Prng.create seed in
         let q = random_query rng nh (min nfree nh) in
         Extension.semantic_extension_width q <= Extension.extension_width q);
    QCheck.Test.make ~name:"ew >= tw(H)" ~count:40
      QCheck.(triple (int_range 2 6) (int_range 1 3) (int_bound 100000))
      (fun (nh, nfree, seed) ->
         let rng = Prng.create seed in
         let q = random_query rng nh (min nfree nh) in
         Extension.extension_width q
         >= Wlcq_treewidth.Exact.treewidth q.Cq.graph);
    QCheck.Test.make ~name:"ew >= quantified star size - 1" ~count:40
      QCheck.(triple (int_range 2 6) (int_range 1 3) (int_bound 100000))
      (fun (nh, nfree, seed) ->
         let rng = Prng.create seed in
         let q = random_query rng nh (min nfree nh) in
         Extension.extension_width q >= Extension.quantified_star_size q - 1);
    QCheck.Test.make
      ~name:"ew <= tw(H) + tw(contract) + 1 (Corollary 4 proof)" ~count:40
      QCheck.(triple (int_range 2 6) (int_range 1 3) (int_bound 100000))
      (fun (nh, nfree, seed) ->
         let rng = Prng.create seed in
         let q = random_query rng nh (min nfree nh) in
         Extension.extension_width q
         <= Wlcq_treewidth.Exact.treewidth q.Cq.graph
            + Wlcq_treewidth.Exact.treewidth (Extension.contract q)
            + 1);
    QCheck.Test.make ~name:"sew invariant under relabelling" ~count:40
      QCheck.(triple (int_range 2 6) (int_range 1 3) (int_bound 100000))
      (fun (nh, nfree, seed) ->
         let rng = Prng.create seed in
         let q = random_query rng nh (min nfree nh) in
         let p = Array.init nh (fun i -> i) in
         Prng.shuffle rng p;
         Extension.semantic_extension_width (Cq.relabel q p)
         = Extension.semantic_extension_width q);
  ]

(* ------------------------------------------------------------------ *)
(* Theorem 1: dimension = sew                                          *)
(* ------------------------------------------------------------------ *)

let test_dimension_examples () =
  check_int "dim(S1)" 1 (Wl_dimension.dimension (Star.query 1));
  check_int "dim(S2)" 2 (Wl_dimension.dimension star2);
  check_int "dim(S3)" 3 (Wl_dimension.dimension star3);
  check_int "dim(edge)" 1 (Wl_dimension.dimension edge_query);
  check_int "dim(path2)" 2 (Wl_dimension.dimension path2_query);
  (* full queries: dimension = treewidth (Neuen) *)
  check_int "dim(full C5)" 2
    (Wl_dimension.dimension (Cq.make (Builders.cycle 5) [ 0; 1; 2; 3; 4 ]));
  check_int "dim(full tree)" 1
    (Wl_dimension.dimension (Cq.make (Builders.path 4) [ 0; 1; 2; 3 ]))

let test_dimension_boolean () =
  (* (B): X = ∅ — deciding hom existence; C5 is a core with tw 2,
     C6 retracts to K2 with tw 1 *)
  check_int "boolean C5" 2 (Wl_dimension.dimension (Cq.make (Builders.cycle 5) []));
  check_int "boolean C6" 1 (Wl_dimension.dimension (Cq.make (Builders.cycle 6) []))

let test_dimension_disconnected () =
  (* (A): max over components *)
  let h = Ops.disjoint_union star2.Cq.graph star3.Cq.graph in
  (* free vars: leaves of both stars *)
  let q = Cq.make h [ 0; 1; 3; 4; 5 ] in
  check_int "disconnected = max of components" 3 (Wl_dimension.dimension q)

(* ------------------------------------------------------------------ *)
(* Lower-bound witness (Section 4)                                     *)
(* ------------------------------------------------------------------ *)

let witness_cases =
  [
    ("S2", star2, 2);
    ("S3", star3, 3);
    ("path2", path2_query, 2);
    ( "triangle-with-pendant-free",
      parse "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)",
      2 );
  ]

let test_witness_ansid_gap () =
  List.iter
    (fun (name, q, _k) ->
       let w = Wl_dimension.lower_bound_witness q in
       let even, odd = Wl_dimension.ans_id_counts w in
       check_bool (name ^ ": Lemma 57 strict gap") true (even > odd))
    witness_cases

let test_witness_lemma50 () =
  (* cpAns = Ans^id for counting-minimal queries *)
  List.iter
    (fun (name, q, _k) ->
       let w = Wl_dimension.lower_bound_witness q in
       let e1, o1 = Wl_dimension.ans_id_counts w in
       let e2, o2 = Wl_dimension.cp_ans_counts w in
       check_int (name ^ ": Lemma 50 even") e1 e2;
       check_int (name ^ ": Lemma 50 odd") o1 o2)
    witness_cases

let test_witness_wl_equivalence () =
  List.iter
    (fun (name, q, k) ->
       if k <= 3 then begin
         let w = Wl_dimension.lower_bound_witness q in
         check_bool (name ^ ": chi pair (k-1)-equivalent") true
           (Wl_dimension.witness_pair_equivalent w (k - 1))
       end)
    witness_cases

let test_witness_f_saturates () =
  List.iter
    (fun (name, q, k) ->
       let w = Wl_dimension.lower_bound_witness q in
       check_int (name ^ ": tw(F) = ew") k
         (Wlcq_treewidth.Exact.treewidth w.Wl_dimension.f.Extension.graph);
       check_int (name ^ ": ell odd") 1 (w.Wl_dimension.f.Extension.ell mod 2))
    witness_cases

let test_separating_pair () =
  List.iter
    (fun (name, q, k) ->
       match Wl_dimension.separating_pair ~max_z:2 q with
       | None -> Alcotest.fail (name ^ ": no separating pair found")
       | Some (g1, g2) ->
         let c1 = Cq.count_answers q g1 and c2 = Cq.count_answers q g2 in
         check_bool (name ^ ": answer counts differ") true (c1 <> c2);
         if k <= 2 then
           check_bool (name ^ ": pair is (k-1)-WL-equivalent") true
             (Wlcq_wl.Equivalence.equivalent (k - 1) g1 g2))
    (List.filter (fun (_, _, k) -> k >= 2) witness_cases)

let test_witness_rejects_full () =
  let q = Cq.make (Builders.cycle 4) [ 0; 1; 2; 3 ] in
  check_bool "full query rejected" true
    (try
       ignore (Wl_dimension.lower_bound_witness q);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Extendable assignments (Definition 51, Lemmas 52/55)                *)
(* ------------------------------------------------------------------ *)

let test_lemma52_claims () =
  (* the three claims of Lemma 52's proof, numerically *)
  List.iter
    (fun (name, q, _) ->
       let w = Wl_dimension.lower_bound_witness q in
       let se = Extendable.make w.Wl_dimension.core w.Wl_dimension.f
           w.Wl_dimension.even in
       let so = Extendable.make w.Wl_dimension.core w.Wl_dimension.f
           w.Wl_dimension.odd in
       let ce = Extendable.class_counts se in
       let co = Extendable.class_counts so in
       check_int (name ^ ": same number of classes") (Array.length ce)
         (Array.length co);
       (* Claim 1: classes i >= 1 have equal sizes *)
       for i = 1 to Array.length ce - 1 do
         check_int
           (Printf.sprintf "%s: Claim 1 class %d" name i)
           ce.(i) co.(i)
       done;
       (* Claims 2 and 3 *)
       check_bool (name ^ ": Claim 2") true (ce.(0) > 0);
       check_int (name ^ ": Claim 3") 0 co.(0);
       (* partition totals match the raw counts *)
       check_int (name ^ ": even partition total")
         (Extendable.count se)
         (Array.fold_left ( + ) 0 ce);
       check_int (name ^ ": odd partition total")
         (Extendable.count so)
         (Array.fold_left ( + ) 0 co))
    witness_cases

let test_extendable_equals_cpans () =
  List.iter
    (fun (name, q, _) ->
       let w = Wl_dimension.lower_bound_witness q in
       let setting_even =
         Extendable.make w.Wl_dimension.core w.Wl_dimension.f
           w.Wl_dimension.even
       in
       let setting_odd =
         Extendable.make w.Wl_dimension.core w.Wl_dimension.f
           w.Wl_dimension.odd
       in
       check_int (name ^ ": Lemma 55 (even twist)")
         (Extendable.count_cp_answers setting_even)
         (Extendable.count setting_even);
       check_int (name ^ ": Lemma 55 (odd twist)")
         (Extendable.count_cp_answers setting_odd)
         (Extendable.count setting_odd);
       check_bool (name ^ ": Lemma 52 strict inequality") true
         (Extendable.count setting_even > Extendable.count setting_odd))
    witness_cases

(* ------------------------------------------------------------------ *)
(* Interpolation upper bound (Lemma 22 / Observation 23)               *)
(* ------------------------------------------------------------------ *)

let test_interpolation_matches_direct () =
  let rng = Prng.create 7 in
  List.iter
    (fun q ->
       for _ = 1 to 4 do
         let g = Gen.gnp rng 4 0.5 in
         let direct = Cq.count_answers q g in
         let interp = Wl_dimension.answers_via_interpolation q g in
         check_bool "interpolation = direct" true
           (Bigint.equal interp (Bigint.of_int direct))
       done)
    [ star2; path2_query; edge_query;
      parse "(x) := exists y . E(x, y)" ]

let test_interpolation_full_query () =
  let q = Cq.make (Builders.path 3) [ 0; 1; 2 ] in
  let g = Builders.cycle 5 in
  check_bool "full query via interpolation" true
    (Bigint.equal
       (Wl_dimension.answers_via_interpolation q g)
       (Bigint.of_int (Cq.count_answers q g)))

let test_interpolation_guard () =
  check_bool "system size guard" true
    (try
       ignore
         (Wl_dimension.answers_via_interpolation ~max_system:4 star2
            (Builders.clique 5));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Quantum queries (Definition 63, Corollary 5)                        *)
(* ------------------------------------------------------------------ *)

let test_quantum_make_merges () =
  let q =
    Quantum.make_exn
      [ (Rat.of_int 2, star2); (Rat.of_int 3, star2); (Rat.one, star3) ]
  in
  check_int "merged terms" 2 (List.length (Quantum.terms q));
  let q0 =
    Quantum.make_exn [ (Rat.of_int 1, star2); (Rat.of_int (-1), star2) ]
  in
  check_int "cancelling terms vanish" 0 (List.length (Quantum.terms q0))

let test_quantum_validation () =
  let disconnected = Cq.make (Builders.matching 2) [ 0; 2 ] in
  check_bool "disconnected rejected" true
    (Result.is_error (Quantum.make [ (Rat.one, disconnected) ]));
  let boolean = Cq.make (Builders.cycle 3) [] in
  check_bool "boolean rejected" true
    (Result.is_error (Quantum.make [ (Rat.one, boolean) ]))

let test_quantum_evaluate () =
  let q = Quantum.make_exn [ (Rat.of_int 2, star2) ] in
  let g = Builders.cycle 5 in
  check_bool "2x star2" true
    (Rat.equal (Quantum.evaluate q g) (Rat.of_int 30))

let test_quantum_hsew () =
  let q =
    Quantum.make_exn [ (Rat.one, star3); (Rat.of_int (-2), edge_query) ]
  in
  check_int "hsew" 3 (Quantum.hsew q);
  check_int "wl dimension = hsew" 3 (Quantum.wl_dimension q)

let test_union_inclusion_exclusion () =
  let cases =
    [
      ([ edge_query; path2_query ], Builders.cycle 6);
      ([ edge_query; path2_query ], Builders.petersen ());
      ([ star2; edge_query ], Builders.clique 4);
      ([ parse "(x) := exists y . E(x, y)";
         parse "(x) := exists y1 y2 . E(x, y1) & E(x, y2) & E(y1, y2)" ],
       Builders.wheel 5);
    ]
  in
  List.iter
    (fun (qs, g) ->
       let direct = Quantum.count_union_answers qs g in
       let quantum = Quantum.evaluate (Quantum.of_union qs) g in
       check_bool "UCQ inclusion-exclusion" true
         (Rat.equal quantum (Rat.of_int direct)))
    cases

let test_conjoin () =
  (* edge ∧ path2 over (x1,x2): both an edge and a common neighbour *)
  let c = Quantum.conjoin edge_query path2_query in
  check_int "conjunction vertices" 3 (Graph.num_vertices c.Cq.graph);
  let g = Builders.clique 3 in
  (* in K3 every ordered distinct pair has an edge and a common
     neighbour: 6 answers *)
  check_int "conjunction answers" 6 (Cq.count_answers c g)

let test_injective_star_quantum () =
  (* Corollary 68 expansion: evaluation = injective star answers *)
  List.iter
    (fun g ->
       List.iter
         (fun k ->
            let quantum = Quantum.evaluate (Quantum.injective_star k) g in
            let direct = Cq.count_answers_injective (Star.query k) g in
            check_bool "injective star quantum" true
              (Rat.equal quantum (Rat.of_int direct)))
         [ 1; 2; 3 ])
    [ Builders.cycle 5; Builders.clique 4; Builders.star 3 ]

let test_injective_expansion_general () =
  (* generalises injective_star: on stars both must agree *)
  List.iter
    (fun k ->
       let a = Quantum.injective_expansion (Star.query k) in
       let b = Quantum.injective_star k in
       List.iter
         (fun g ->
            check_bool "general = star-specific" true
              (Rat.equal (Quantum.evaluate a g) (Quantum.evaluate b g)))
         [ Builders.cycle 5; Builders.clique 4 ])
    [ 1; 2; 3 ];
  (* and on arbitrary queries it must match direct injective counting *)
  List.iter
    (fun q ->
       List.iter
         (fun g ->
            check_int "quantum injective = direct injective"
              (Cq.count_answers_injective q g)
              (match Rat.to_bigint_opt (Quantum.evaluate (Quantum.injective_expansion q) g) with
               | Some v -> Option.value ~default:min_int (Bigint.to_int_opt v)
               | None -> min_int))
         [ Builders.cycle 5; Builders.petersen () ])
    [ edge_query; path2_query;
      parse "(x1, x2, x3) := E(x1, x2) & E(x2, x3)" ]

let test_free_negations () =
  (* ¬E(x1, x2) on the 2-star: common neighbour but not adjacent *)
  let q = Quantum.with_free_negations star2 [ (0, 1) ] in
  List.iter
    (fun g ->
       let direct = Quantum.count_answers_with_negations star2 [ (0, 1) ] g in
       check_bool "negation expansion = direct" true
         (Rat.equal (Quantum.evaluate q g) (Rat.of_int direct)))
    [ Builders.cycle 5; Builders.clique 4; Builders.petersen ();
      Builders.grid 3 3 ];
  (* in K4 every pair is adjacent, so only the diagonal answers
     survive the negation *)
  check_int "K4 negated star" 4
    (Quantum.count_answers_with_negations star2 [ (0, 1) ] (Builders.clique 4))

let negation_qcheck =
  [
    QCheck.Test.make
      ~name:"negation expansion matches direct counting" ~count:25
      QCheck.(pair (int_range 2 5) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         let q = Quantum.with_free_negations star2 [ (0, 1) ] in
         Rat.equal (Quantum.evaluate q g)
           (Rat.of_int
              (Quantum.count_answers_with_negations star2 [ (0, 1) ] g)));
    QCheck.Test.make
      ~name:"injective expansion matches direct counting" ~count:25
      QCheck.(pair (int_range 2 5) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         let q = parse "(x1, x2) := exists y . E(x1, y) & E(y, x2)" in
         Rat.equal
           (Quantum.evaluate (Quantum.injective_expansion q) g)
           (Rat.of_int (Cq.count_answers_injective q g)));
  ]

let test_quantum_lower_bound_witness () =
  (* Corollary 5 constructively: a (hsew-1)-WL-equivalent pair the
     quantum query tells apart *)
  let q = Quantum.of_union [ edge_query; star2 ] in
  check_int "hsew of the union" 2 (Quantum.hsew q);
  match Quantum.lower_bound_witness q with
  | None -> Alcotest.fail "expected a Corollary 5 witness"
  | Some (g1, g2) ->
    check_bool "evaluations differ" true
      (not (Rat.equal (Quantum.evaluate q g1) (Quantum.evaluate q g2)));
    check_bool "pair is (hsew-1)-WL-equivalent" true
      (Wlcq_wl.Equivalence.equivalent 1 g1 g2)

let test_injective_star_leading_coeff () =
  (* the paper notes c_k = 1 *)
  let q = Quantum.injective_star 4 in
  let leading =
    match
      List.find_opt
        (fun t -> Cq.num_free t.Quantum.query = 4)
        (Quantum.terms q)
    with
    | Some t -> t
    | None -> Alcotest.fail "no arity-4 term in the injective star"
  in
  check_bool "c_k = 1" true (Rat.equal leading.Quantum.coeff Rat.one)

(* ------------------------------------------------------------------ *)
(* Dominating sets (Corollary 6 / 68)                                  *)
(* ------------------------------------------------------------------ *)

let test_domset_known () =
  (* K4: every single vertex dominates *)
  check_string "K4 k=1" "4" (Bigint.to_string (Domset.count_direct 1 (Builders.clique 4)));
  (* C5: no single vertex dominates; pairs at distance 2 do *)
  check_string "C5 k=1" "0" (Bigint.to_string (Domset.count_direct 1 (Builders.cycle 5)));
  check_string "C5 k=2" "5" (Bigint.to_string (Domset.count_direct 2 (Builders.cycle 5)));
  (* Petersen: domination number 3 with exactly 10 minimum dominating sets *)
  check_string "petersen k=3" "10"
    (Bigint.to_string (Domset.count_direct 3 (Builders.petersen ())))

let test_domset_three_ways () =
  let graphs =
    [ Builders.cycle 5; Builders.cycle 6; Builders.clique 4;
      Builders.petersen (); Builders.star 4; Builders.grid 2 3 ]
  in
  List.iter
    (fun g ->
       List.iter
         (fun k ->
            let a = Domset.count_direct k g in
            let b = Domset.count_via_stars k g in
            let c = Domset.count_via_quantum k g in
            check_bool "direct = stars" true (Bigint.equal a b);
            check_bool "direct = quantum" true (Bigint.equal a c))
         [ 1; 2; 3 ])
    graphs

let test_domset_srg_certificate () =
  (* Shrikhande vs rook are 2-WL-equivalent; Corollary 6 says
     3-dominating-set counting has WL-dimension 3, and indeed it
     separates the pair — while the dimension-2 star query agrees. *)
  let r = Builders.rook () and s = Builders.shrikhande () in
  check_int "star2 (dim 2) agrees on 2-WL-equivalent pair"
    (Cq.count_answers star2 r) (Cq.count_answers star2 s);
  let dr = Domset.count_direct 3 r and ds = Domset.count_direct 3 s in
  check_bool "3-domsets separate the 2-WL-equivalent pair" true
    (not (Bigint.equal dr ds));
  check_string "rook has no 3-dominating set" "0" (Bigint.to_string dr);
  check_string "shrikhande has 32" "32" (Bigint.to_string ds)

let domset_qcheck =
  [
    QCheck.Test.make ~name:"domset reductions agree on random graphs"
      ~count:25
      QCheck.(triple (int_range 1 3) (int_range 3 7) (int_bound 100000))
      (fun (k, n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let a = Domset.count_direct k g in
         Bigint.equal a (Domset.count_via_stars k g)
         && Bigint.equal a (Domset.count_via_quantum k g));
    QCheck.Test.make ~name:"interpolation agrees on random star instances"
      ~count:15
      QCheck.(pair (int_range 2 4) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         Bigint.equal
           (Wl_dimension.answers_via_interpolation star2 g)
           (Bigint.of_int (Cq.count_answers star2 g)));
  ]

(* ------------------------------------------------------------------ *)
(* Certificate: end-to-end Theorem 1 evidence                          *)
(* ------------------------------------------------------------------ *)

let test_certificates_valid () =
  List.iter
    (fun q ->
       let c = Certificate.certify q in
       check_bool "certificate valid" true (Certificate.is_valid c))
    [ star2; edge_query; path2_query;
      parse "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)";
      (* full query: upper bound only *)
      Cq.make (Builders.path 3) [ 0; 1; 2 ] ]

let test_certificate_structure () =
  let c = Certificate.certify star2 in
  check_int "dimension" 2 c.Certificate.dimension;
  (match c.Certificate.lower with
   | None -> Alcotest.fail "expected a lower bound section"
   | Some l ->
     check_int "tw(F) = dimension" 2 l.Certificate.f_treewidth;
     check_bool "ell odd" true (l.Certificate.ell mod 2 = 1);
     check_bool "strict gap" true
       (l.Certificate.ans_id_even > l.Certificate.ans_id_odd);
     check_bool "separating pair present" true
       (Option.is_some l.Certificate.separating));
  let cfull = Certificate.certify (Cq.make (Builders.cycle 4) [ 0; 1; 2; 3 ]) in
  check_bool "full query has no lower section" true
    (Option.is_none cfull.Certificate.lower);
  check_int "full query dimension = tw" 2 cfull.Certificate.dimension

let test_certificate_rejects () =
  check_bool "boolean rejected" true
    (try
       ignore (Certificate.certify (Cq.make (Builders.cycle 3) []));
       false
     with Invalid_argument _ -> true);
  check_bool "disconnected rejected" true
    (try
       ignore (Certificate.certify (Cq.make (Builders.matching 2) [ 0; 2 ]));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Acyclic: the Observation 62 walk semantics                          *)
(* ------------------------------------------------------------------ *)

let test_acyclic_skeleton () =
  let q = parse "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)" in
  let s = Acyclic.skeleton q in
  check_int "arity" 2 s.Acyclic.arity;
  check_bool "faithful" true s.Acyclic.faithful;
  Alcotest.(check (list (triple int int int))) "one weighted edge"
    [ (0, 1, 2) ] s.Acyclic.constraints;
  (* star3: the quantified centre touches three free variables *)
  let s3 = Acyclic.skeleton star3 in
  check_bool "star3 not faithful" false s3.Acyclic.faithful;
  (* dangling tails are dropped *)
  let q = parse "(x1, x2) := exists y . E(x1, x2) & E(x2, y)" in
  let s = Acyclic.skeleton q in
  check_bool "dangling dropped" true
    ((match s.Acyclic.constraints with
      | [ (0, 1, 0) ] -> true
      | _ -> false)
     && s.Acyclic.faithful)

let test_acyclic_walks () =
  let g = Builders.cycle 6 in
  check_bool "walk length 3 across C6" true (Acyclic.walk_exists g 0 3 3);
  check_bool "no odd walk to even distance" false
    (Acyclic.walk_exists g 0 3 4);
  check_bool "walk back and forth" true (Acyclic.walk_exists g 0 0 2)

let test_acyclic_counts_match () =
  let queries =
    [ edge_query; path2_query; star2;
      parse "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)";
      parse "(x1) := exists y1 y2 . E(x1, y1) & E(y1, y2)";
      parse "(x1, x2, x3) := E(x1, x2) & E(x2, x3)" ]
  in
  let graphs =
    [ Builders.cycle 6; Builders.two_triangles (); Builders.petersen ();
      Builders.clique 4 ]
  in
  List.iter
    (fun q ->
       List.iter
         (fun g ->
            check_int "walk semantics = answers" (Cq.count_answers q g)
              (Acyclic.count_answers_walks q g))
         graphs)
    queries

let test_acyclic_guards () =
  check_bool "star3 rejected" true
    (try
       ignore (Acyclic.count_answers_walks star3 (Builders.cycle 5));
       false
     with Invalid_argument _ -> true);
  check_bool "isolated vertices rejected" true
    (try
       ignore (Acyclic.count_answers_walks edge_query (Graph.empty 3));
       false
     with Invalid_argument _ -> true);
  check_bool "cyclic query rejected" true
    (try
       ignore (Acyclic.skeleton (Cq.make (Builders.cycle 3) [ 0 ]));
       false
     with Invalid_argument _ -> true)

let acyclic_qcheck =
  [
    QCheck.Test.make
      ~name:"walk semantics matches enumeration on faithful queries"
      ~count:40
      QCheck.(quad (int_range 2 6) (int_range 1 3) (int_range 3 6)
                (int_bound 100000))
      (fun (nh, nfree, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.random_tree rng nh in
         let vs = Array.init nh (fun i -> i) in
         Prng.shuffle rng vs;
         let q = Cq.make h (Array.to_list (Array.sub vs 0 (min nfree nh))) in
         let s = Acyclic.skeleton q in
         QCheck.assume s.Acyclic.faithful;
         (* cycle graphs have no isolated vertices *)
         let g = Builders.cycle ng in
         Acyclic.count_answers_walks q g = Cq.count_answers q g);
  ]

(* ------------------------------------------------------------------ *)
(* Ucq: first-class unions of conjunctive queries                      *)
(* ------------------------------------------------------------------ *)

let test_ucq_parse_and_count () =
  match Ucq.of_string
          "(x1, x2) := E(x1, x2) | exists y . E(x1, y) & E(y, x2)"
  with
  | Error e -> Alcotest.fail e
  | Ok u ->
    check_int "two disjuncts" 2 (List.length (Ucq.disjuncts u));
    (* adjacent-or-distance-2 pairs in C6: adjacent 12, distance-2 12,
       plus diagonal pairs with a common neighbour... compare against
       the reference evaluation through quantum expansion *)
    List.iter
      (fun g ->
         let direct = Ucq.count_answers u g in
         let quantum = Quantum.evaluate (Ucq.to_quantum u) g in
         check_bool "quantum = direct" true
           (Rat.equal quantum (Rat.of_int direct)))
      [ Builders.cycle 6; Builders.petersen (); Builders.clique 4 ]

let test_ucq_dimension () =
  match Ucq.of_string
          "(x1, x2) := E(x1, x2) | exists y . E(x1, y) & E(x2, y)"
  with
  | Error e -> Alcotest.fail e
  | Ok u -> check_int "dimension via hsew" 2 (Ucq.wl_dimension u)

let test_ucq_validation () =
  check_bool "arity mismatch rejected" true
    (Result.is_error
       (Ucq.of_string "(x1, x2) := E(x1, x2) | E(x1, x1)"));
  check_bool "empty rejected" true
    (try
       ignore (Ucq.make []);
       false
     with Invalid_argument _ -> true);
  (* scoping: the same existential name in two disjuncts is two
     distinct variables *)
  match
    Ucq.of_string
      "(x) := exists y . E(x, y) | exists y . E(y, x)"
  with
  | Error e -> Alcotest.fail e
  | Ok u -> check_int "scoped existentials" 2 (List.length (Ucq.disjuncts u))

(* ------------------------------------------------------------------ *)
(* Invariant: WL-dimension bounds for graph parameters                 *)
(* ------------------------------------------------------------------ *)

let test_witness_pairs_sound () =
  (* every library pair must actually be k-WL-equivalent and
     non-isomorphic *)
  List.iter
    (fun (name, k, g1, g2) ->
       check_bool (name ^ " non-isomorphic") false (Iso.isomorphic g1 g2);
       check_bool (name ^ " k-equivalent") true
         (Wlcq_wl.Equivalence.equivalent k g1 g2))
    (Invariant.witness_pairs ())

let test_invariant_bounds () =
  let lib = Invariant.standard_library () in
  let find name =
    match
      List.find_opt (fun p -> String.equal p.Invariant.name name) lib
    with
    | Some p -> p
    | None -> Alcotest.fail ("missing invariant " ^ name)
  in
  check_bool "edges never separate" true
    (Option.is_none (Invariant.dimension_lower_bound (find "num-edges")));
  (match Invariant.dimension_lower_bound (find "triangles") with
   | Some (2, _) -> ()
   | _ -> Alcotest.fail "triangles should give lower bound 2");
  (match Invariant.dimension_lower_bound (find "domsets-3") with
   | Some (3, _) -> ()
   | _ -> Alcotest.fail "domsets-3 should give lower bound 3");
  check_bool "charpoly consistent with dim 2" true
    (Invariant.invariant_on_pairs (find "charpoly") ~dim:2);
  check_bool "charpoly not consistent with dim 1" false
    (Invariant.invariant_on_pairs (find "charpoly") ~dim:1)

let test_invariant_of_query () =
  (* the query-based parameter matches Cq.count_answers *)
  let p = Invariant.of_query "star2" star2 in
  check_string "query parameter value" "15" (p.Invariant.value (Builders.cycle 5))

(* ------------------------------------------------------------------ *)
(* Fast_count: the Corollary 4 polynomial-time counting algorithm      *)
(* ------------------------------------------------------------------ *)

let test_fast_count_known () =
  let cases =
    [
      (star2, Builders.cycle 5, 15);
      (star3, Builders.petersen (), 250);
      (edge_query, Builders.petersen (), 30);
      (path2_query, Builders.clique 3, 9);
      (parse "(x) := exists y . E(x, y)", Builders.star 4, 5);
    ]
  in
  List.iter
    (fun (q, g, expected) ->
       check_bool "fast count known" true
         (Bigint.equal (Fast_count.count_answers q g) (Bigint.of_int expected)))
    cases

let test_fast_count_edge_cases () =
  (* boolean query *)
  check_bool "boolean true" true
    (Bigint.equal
       (Fast_count.count_answers (Cq.make (Builders.cycle 3) []) (Builders.clique 4))
       Bigint.one);
  check_bool "boolean false" true
    (Bigint.is_zero
       (Fast_count.count_answers (Cq.make (Builders.cycle 3) []) (Builders.cycle 6)));
  (* empty data graph *)
  check_bool "empty target" true
    (Bigint.is_zero (Fast_count.count_answers star2 (Graph.empty 0)));
  (* full query *)
  let q = Cq.make (Builders.path 3) [ 0; 1; 2 ] in
  check_bool "full query" true
    (Bigint.equal
       (Fast_count.count_answers q (Builders.cycle 4))
       (Bigint.of_int (Cq.count_answers q (Builders.cycle 4))));
  (* disconnected query with an unattached boolean component *)
  let h = Ops.disjoint_union (Builders.star 1) (Builders.cycle 3) in
  let q = Cq.make h [ 0 ] in
  check_bool "boolean component satisfied" true
    (Bigint.equal
       (Fast_count.count_answers q (Builders.clique 4))
       (Bigint.of_int (Cq.count_answers q (Builders.clique 4))));
  check_bool "boolean component unsatisfied" true
    (Bigint.is_zero (Fast_count.count_answers q (Builders.cycle 6)))

let fast_count_qcheck =
  [
    QCheck.Test.make
      ~name:"fast count agrees with enumeration on random queries" ~count:60
      QCheck.(quad (int_range 1 5) (int_range 0 4) (int_range 1 6)
                (int_bound 100000))
      (fun (nh, extra, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng (nh + extra) 0.5 in
         (* free variables: a random subset of size nh *)
         let vs = Array.init (nh + extra) (fun i -> i) in
         Prng.shuffle rng vs;
         let free = Array.to_list (Array.sub vs 0 nh) in
         let q = Cq.make h free in
         let g = Gen.gnp rng ng 0.5 in
         Bigint.equal (Fast_count.count_answers q g)
           (Bigint.of_int (Cq.count_answers q g)));
    QCheck.Test.make
      ~name:"fast count agrees with interpolation on connected queries"
      ~count:20
      QCheck.(pair (int_range 2 4) (int_bound 100000))
      (fun (nh, seed) ->
         let rng = Prng.create seed in
         let h = Gen.random_connected rng nh 0.4 in
         let q = Cq.make h [ 0 ] in
         let g = Gen.gnp rng 4 0.5 in
         Bigint.equal (Fast_count.count_answers q g)
           (Wl_dimension.answers_via_interpolation q g));
  ]

(* ------------------------------------------------------------------ *)
(* Packed engines vs reference oracles (core-level workloads)          *)
(* ------------------------------------------------------------------ *)

let test_td_packed_on_cfi_pairs () =
  (* CFI witness pairs are the adversarial instances of the paper; the
     packed engine must agree with the reference on both sides of each
     pair, for patterns that do and do not distinguish them. *)
  let patterns =
    [ Builders.path 3; Builders.cycle 4; Builders.star 3; Builders.cycle 3 ]
  in
  List.iter
    (fun base ->
       let even, odd = Wlcq_cfi.Pairs.twisted_pair base in
       List.iter
         (fun h ->
            List.iter
              (fun (tag, g) ->
                 check_bool
                   (Printf.sprintf "packed=reference on CFI %s side" tag)
                   true
                   (Bigint.equal
                      (Wlcq_hom.Td_count.count h g)
                      (Wlcq_hom.Td_count.count_reference h g)))
              [ ("even", even.Wlcq_cfi.Cfi.graph); ("odd", odd.Wlcq_cfi.Cfi.graph) ])
         patterns)
    [ Builders.cycle 4; Builders.path 4 ]

let test_count_many_on_extension_family () =
  (* The real Lemma 22 workload: F_1 ⊆ … ⊆ F_L for a quantified query,
     batch counts vs independent reference counts. *)
  let q = parse "(x1, x2) := exists y . E(x1, y) & E(y, x2)" in
  let core = Minimize.counting_core q in
  let g = Builders.petersen () in
  let patterns =
    List.init 4 (fun i -> (Extension.f_ell core (i + 1)).Extension.graph)
  in
  let batch = Wlcq_hom.Td_count.count_many patterns g in
  List.iter2
    (fun h b ->
       check_bool "count_many = reference on F_ell" true
         (Bigint.equal b (Wlcq_hom.Td_count.count_reference h g)))
    patterns batch

let packed_core_qcheck =
  [
    QCheck.Test.make
      ~name:"packed fast count equals reference oracle on random queries"
      ~count:50
      QCheck.(quad (int_range 1 4) (int_range 1 3) (int_range 1 6)
                (int_bound 100000))
      (fun (num_free, extra, ng, seed) ->
         let rng = Prng.create seed in
         let q =
           Gen_query.random_connected rng ~num_vars:(num_free + extra)
             ~num_free ~edge_prob:0.5
         in
         let g = Gen.gnp rng ng 0.5 in
         Bigint.equal (Fast_count.count_answers q g)
           (Fast_count.count_answers_reference q g));
    QCheck.Test.make
      ~name:"count_many equals reference on random f_ell families" ~count:25
      QCheck.(triple (int_range 2 4) (int_range 2 5) (int_bound 100000))
      (fun (num_vars, ng, seed) ->
         let rng = Prng.create seed in
         let q =
           Gen_query.random_connected rng ~num_vars ~num_free:1 ~edge_prob:0.5
         in
         let core = Minimize.counting_core q in
         let g = Gen.gnp rng ng 0.5 in
         let patterns =
           List.init 3 (fun i -> (Extension.f_ell core (i + 1)).Extension.graph)
         in
         let batch = Wlcq_hom.Td_count.count_many patterns g in
         let indiv =
           List.map
             (fun h -> Wlcq_hom.Td_count.count_reference h g)
             patterns
         in
         List.for_all2 Bigint.equal batch indiv);
  ]

(* ------------------------------------------------------------------ *)
(* Observation 62: acyclic queries cannot separate 2K3 from C6         *)
(* ------------------------------------------------------------------ *)

let acyclic_family =
  [
    "(x) := exists y . E(x, y)";
    "(x1, x2) := E(x1, x2)";
    "(x1, x2) := exists y . E(x1, y) & E(y, x2)";
    "(x1, x2) := exists y . E(x1, y) & E(x2, y)";
    "(x1, x2, x3) := exists y . E(x1, y) & E(x2, y) & E(x3, y)";
    "(x1) := exists y1 y2 y3 . E(x1, y1) & E(y1, y2) & E(y2, y3)";
    "(x1, x2) := exists y1 y2 . E(x1, y1) & E(y1, y2) & E(y2, x2)";
    "(x1, x2, x3) := E(x1, x2) & E(x2, x3)";
  ]

let test_observation62 () =
  let g1 = Builders.two_triangles () and g2 = Builders.cycle 6 in
  List.iter
    (fun s ->
       let q = parse s in
       check_bool ("acyclic: " ^ s) true
         (Traversal.is_forest q.Cq.graph);
       check_int ("Obs 62: " ^ s) (Cq.count_answers q g1)
         (Cq.count_answers q g2))
    acyclic_family

let test_observation62_control () =
  (* a non-acyclic query (the triangle) distinguishes the pair *)
  let q = parse "(x1) := exists y1 y2 . E(x1, y1) & E(x1, y2) & E(y1, y2)" in
  let c1 = Cq.count_answers q (Builders.two_triangles ()) in
  let c2 = Cq.count_answers q (Builders.cycle 6) in
  check_bool "triangle query separates" true (c1 <> c2)

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_core"
    [
      ( "cq",
        [
          Alcotest.test_case "make validation" `Quick test_cq_make_validation;
          Alcotest.test_case "classification" `Quick test_cq_classification;
          Alcotest.test_case "full = homs" `Quick
            test_full_query_answers_are_homs;
          Alcotest.test_case "boolean decision" `Quick
            test_boolean_query_decision;
          Alcotest.test_case "star semantics" `Quick
            test_star_answers_semantics;
          Alcotest.test_case "known counts" `Quick test_count_answers_known;
          Alcotest.test_case "injective answers" `Quick test_injective_answers;
          Alcotest.test_case "query isomorphism" `Quick test_query_isomorphism;
          Alcotest.test_case "partial automorphisms" `Quick
            test_partial_automorphisms;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "whitespace" `Quick
            test_parser_whitespace_insensitive;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "minimal examples" `Quick test_minimal_examples;
          Alcotest.test_case "pendant tail" `Quick test_nonminimal_pendant;
          Alcotest.test_case "answers preserved" `Quick
            test_core_preserves_answers;
          Alcotest.test_case "shrinking endomorphism" `Quick
            test_shrinking_endomorphism_properties;
        ] );
      qsuite "minimize-properties" minimize_qcheck;
      ( "extension",
        [
          Alcotest.test_case "gamma star clique" `Quick test_gamma_star_clique;
          Alcotest.test_case "gamma full" `Quick test_gamma_no_quantified;
          Alcotest.test_case "gamma components" `Quick
            test_gamma_two_components;
          Alcotest.test_case "known widths" `Quick test_widths_known;
          Alcotest.test_case "F_ell structure" `Quick test_f_ell_structure;
          Alcotest.test_case "Corollary 18" `Quick test_corollary18;
          Alcotest.test_case "saturating ell" `Quick test_saturating_ell;
          Alcotest.test_case "contract" `Quick test_contract;
        ] );
      ( "gen-query",
        [ Alcotest.test_case "generators" `Quick test_gen_query ] );
      qsuite "extension-properties" extension_qcheck;
      ( "theorem1",
        [
          Alcotest.test_case "examples" `Quick test_dimension_examples;
          Alcotest.test_case "boolean queries" `Quick test_dimension_boolean;
          Alcotest.test_case "disconnected queries" `Quick
            test_dimension_disconnected;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "Ans^id gap (Lemma 57)" `Quick
            test_witness_ansid_gap;
          Alcotest.test_case "Lemma 50" `Quick test_witness_lemma50;
          Alcotest.test_case "WL equivalence (Lemma 35)" `Slow
            test_witness_wl_equivalence;
          Alcotest.test_case "F saturates ew" `Quick test_witness_f_saturates;
          Alcotest.test_case "separating pair (Lemma 40)" `Slow
            test_separating_pair;
          Alcotest.test_case "full query rejected" `Quick
            test_witness_rejects_full;
        ] );
      ( "extendable",
        [
          Alcotest.test_case "Lemmas 52/55" `Quick test_extendable_equals_cpans;
          Alcotest.test_case "Lemma 52 claims 1-3" `Quick test_lemma52_claims;
        ] );
      ( "interpolation",
        [
          Alcotest.test_case "matches direct" `Quick
            test_interpolation_matches_direct;
          Alcotest.test_case "full query" `Quick test_interpolation_full_query;
          Alcotest.test_case "guard" `Quick test_interpolation_guard;
        ] );
      ( "quantum",
        [
          Alcotest.test_case "make merges" `Quick test_quantum_make_merges;
          Alcotest.test_case "validation" `Quick test_quantum_validation;
          Alcotest.test_case "evaluate" `Quick test_quantum_evaluate;
          Alcotest.test_case "hsew" `Quick test_quantum_hsew;
          Alcotest.test_case "UCQ inclusion-exclusion" `Quick
            test_union_inclusion_exclusion;
          Alcotest.test_case "conjoin" `Quick test_conjoin;
          Alcotest.test_case "injective star" `Quick
            test_injective_star_quantum;
          Alcotest.test_case "leading coefficient" `Quick
            test_injective_star_leading_coeff;
          Alcotest.test_case "Corollary 5 witness" `Quick
            test_quantum_lower_bound_witness;
          Alcotest.test_case "injective expansion" `Quick
            test_injective_expansion_general;
          Alcotest.test_case "free negations" `Quick test_free_negations;
        ] );
      qsuite "negation-properties" negation_qcheck;
      ( "domset",
        [
          Alcotest.test_case "known counts" `Quick test_domset_known;
          Alcotest.test_case "three ways" `Quick test_domset_three_ways;
          Alcotest.test_case "SRG certificate" `Quick
            test_domset_srg_certificate;
        ] );
      qsuite "domset-properties" domset_qcheck;
      ( "certificate",
        [
          Alcotest.test_case "valid end-to-end" `Slow test_certificates_valid;
          Alcotest.test_case "structure" `Quick test_certificate_structure;
          Alcotest.test_case "rejects" `Quick test_certificate_rejects;
        ] );
      ( "acyclic",
        [
          Alcotest.test_case "skeleton" `Quick test_acyclic_skeleton;
          Alcotest.test_case "walks" `Quick test_acyclic_walks;
          Alcotest.test_case "counts match" `Quick test_acyclic_counts_match;
          Alcotest.test_case "guards" `Quick test_acyclic_guards;
        ] );
      qsuite "acyclic-properties" acyclic_qcheck;
      ( "ucq",
        [
          Alcotest.test_case "parse and count" `Quick test_ucq_parse_and_count;
          Alcotest.test_case "dimension" `Quick test_ucq_dimension;
          Alcotest.test_case "validation" `Quick test_ucq_validation;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "witness pairs sound" `Slow
            test_witness_pairs_sound;
          Alcotest.test_case "bounds" `Quick test_invariant_bounds;
          Alcotest.test_case "query parameters" `Quick test_invariant_of_query;
        ] );
      ( "fast-count",
        [
          Alcotest.test_case "known values" `Quick test_fast_count_known;
          Alcotest.test_case "edge cases" `Quick test_fast_count_edge_cases;
        ] );
      qsuite "fast-count-properties" fast_count_qcheck;
      ( "packed-engine",
        [
          Alcotest.test_case "td packed vs reference on CFI pairs" `Quick
            test_td_packed_on_cfi_pairs;
          Alcotest.test_case "count_many on extension family" `Quick
            test_count_many_on_extension_family;
        ] );
      qsuite "packed-core-properties" packed_core_qcheck;
      ( "observation62",
        [
          Alcotest.test_case "acyclic family" `Quick test_observation62;
          Alcotest.test_case "non-acyclic control" `Quick
            test_observation62_control;
        ] );
    ]
