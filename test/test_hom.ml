open Wlcq_graph
open Wlcq_hom
module Prng = Wlcq_util.Prng
module Bigint = Wlcq_util.Bigint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Brute                                                               *)
(* ------------------------------------------------------------------ *)

let test_known_hom_counts () =
  (* Hom(K2, G) = 2m; Hom(K1, G) = n *)
  let g = Builders.petersen () in
  check_int "Hom(K1,petersen)" 10 (Brute.count (Builders.clique 1) g);
  check_int "Hom(K2,petersen)" 30 (Brute.count (Builders.clique 2) g);
  (* triangles: petersen is triangle-free *)
  check_int "Hom(K3,petersen)" 0 (Brute.count (Builders.clique 3) g);
  (* Hom(K3,K3) = 6, Hom(C5,K3): closed walks... use known small case
     Hom(P3, K3) = 3*2*2 = 12 *)
  check_int "Hom(K3,K3)" 6 (Brute.count (Builders.clique 3) (Builders.clique 3));
  check_int "Hom(P3,K3)" 12 (Brute.count (Builders.path 3) (Builders.clique 3))

let test_hom_walks () =
  (* |Hom(P_k, G)| counts walks of length k-1; in C4 every vertex has 2
     neighbours so |Hom(P3, C4)| = 4*2*2 = 16 *)
  check_int "Hom(P3,C4)" 16 (Brute.count (Builders.path 3) (Builders.cycle 4));
  (* homs from C4 into K2: 4-cycles map onto an edge back and forth = 2 *)
  check_int "Hom(C4,K2)" 2 (Brute.count (Builders.cycle 4) (Builders.clique 2));
  (* no homs from odd cycle into bipartite graph *)
  check_int "Hom(C5,C6)" 0 (Brute.count (Builders.cycle 5) (Builders.cycle 6))

let test_hom_pins () =
  let p3 = Builders.path 3 in
  let c4 = Builders.cycle 4 in
  (* pinning the middle of P3 to a fixed vertex: 2*2 = 4 *)
  check_int "pinned middle" 4 (Brute.count ~pins:[ (1, 0) ] p3 c4);
  (* pinning both endpoints to adjacent vertices: middle must be common
     neighbour of 0 and 1 in C4: none *)
  check_int "pinned ends adjacent" 0
    (Brute.count ~pins:[ (0, 0); (2, 1) ] p3 c4);
  (* pinning both endpoints to the same vertex: 2 common neighbours *)
  check_int "pinned ends equal" 2 (Brute.count ~pins:[ (0, 0); (2, 0) ] p3 c4)

let test_hom_empty_cases () =
  check_int "empty pattern" 1 (Brute.count (Graph.empty 0) (Builders.cycle 4));
  check_int "empty target" 0 (Brute.count (Builders.path 2) (Graph.empty 0));
  (* pattern with isolated vertices: each contributes a factor n *)
  check_int "isolated vertices" 16
    (Brute.count (Graph.empty 2) (Builders.cycle 4))

let test_enumerate_valid () =
  let h = Builders.cycle 3 and g = Builders.clique 4 in
  let homs = Brute.enumerate h g in
  check_int "Hom(C3,K4) count" 24 (List.length homs);
  check_bool "all are homomorphisms" true
    (List.for_all (Brute.is_homomorphism h g) homs);
  let distinct = List.sort_uniq Wlcq_util.Ordering.int_array homs in
  check_int "no duplicates" 24 (List.length distinct)

(* ------------------------------------------------------------------ *)
(* Td_count                                                            *)
(* ------------------------------------------------------------------ *)

let test_td_matches_brute_known () =
  let cases =
    [
      (Builders.path 4, Builders.petersen ());
      (Builders.cycle 5, Builders.clique 4);
      (Builders.star 3, Builders.cycle 6);
      (Builders.clique 3, Builders.wheel 5);
      (Builders.two_triangles (), Builders.clique 4);
      (Builders.grid 2 3, Builders.clique 3);
      (Graph.empty 2, Builders.cycle 4);
    ]
  in
  List.iter
    (fun (h, g) ->
       let brute = Brute.count h g in
       let td = Td_count.count h g in
       check_bool
         (Printf.sprintf "td=brute on %s -> %s" (Graph.to_string h)
            (Graph.to_string g))
         true
         (Bigint.equal td (Bigint.of_int brute)))
    cases

let test_td_large_count () =
  (* Hom(star_5, K10): centre 10 choices, each leaf 9 -> 10*9^5 *)
  let v = Td_count.count (Builders.star 5) (Builders.clique 10) in
  check_bool "star into clique" true
    (Bigint.equal v (Bigint.of_int (10 * 59049)));
  (* edgeless pattern with 12 vertices into K20: 20^12 overflows 32-bit
     ranges comfortably; check against pow *)
  let v = Td_count.count (Graph.empty 12) (Builders.clique 20) in
  check_bool "20^12" true (Bigint.equal v (Bigint.pow (Bigint.of_int 20) 12))

let test_nice_count_matches () =
  let cases =
    [
      (Builders.path 4, Builders.petersen ());
      (Builders.cycle 5, Builders.clique 4);
      (Builders.star 3, Builders.cycle 6);
      (Builders.two_triangles (), Builders.clique 4);
      (Graph.empty 0, Builders.cycle 4);
      (Graph.empty 2, Builders.cycle 4);
      (Builders.path 2, Graph.empty 0);
    ]
  in
  List.iter
    (fun (h, g) ->
       check_bool "nice = brute" true
         (Bigint.equal (Nice_count.count h g)
            (Bigint.of_int (Brute.count h g))))
    cases

let td_qcheck =
  [
    QCheck.Test.make ~name:"nice count equals brute count on random pairs"
      ~count:60
      QCheck.(triple (int_range 1 6) (int_range 1 7) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.5 in
         Bigint.equal (Nice_count.count h g) (Bigint.of_int (Brute.count h g)));
    QCheck.Test.make ~name:"td count equals brute count on random pairs"
      ~count:60
      QCheck.(triple (int_range 1 6) (int_range 1 7) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.5 in
         Bigint.equal (Td_count.count h g) (Bigint.of_int (Brute.count h g)));
    QCheck.Test.make ~name:"hom counts multiply over tensor products"
      ~count:30
      QCheck.(triple (int_range 1 4) (int_range 1 4) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g1 = Gen.gnp rng ng 0.5 in
         let g2 = Gen.gnp rng ng 0.6 in
         Brute.count h (Ops.tensor_product g1 g2)
         = Brute.count h g1 * Brute.count h g2);
    QCheck.Test.make ~name:"hom counts multiply over disjoint patterns"
      ~count:30
      QCheck.(triple (int_range 1 4) (int_range 1 5) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h1 = Gen.gnp rng nh 0.5 in
         let h2 = Gen.gnp rng nh 0.4 in
         let g = Gen.gnp rng ng 0.5 in
         Brute.count (Ops.disjoint_union h1 h2) g
         = Brute.count h1 g * Brute.count h2 g);
  ]

(* ------------------------------------------------------------------ *)
(* Packed engines vs reference oracles                                 *)
(* ------------------------------------------------------------------ *)

module Bitset = Wlcq_util.Bitset

let test_dp_key_roundtrip () =
  let c = Dp_key.codec ~n:10 in
  let img = [| 3; 9; 0; 7 |] in
  let key = Dp_key.pack c img in
  let dst = Array.make 4 (-1) in
  Dp_key.unpack c key ~arity:4 dst;
  check_bool "pack/unpack roundtrip" true
    (Wlcq_util.Ordering.equal_array Int.equal img dst);
  let r = Dp_key.restrict_packed c key [| 2; 1 |] in
  Dp_key.unpack c r ~arity:2 dst;
  check_int "restricted coord 0" 0 dst.(0);
  check_int "restricted coord 1" 9 dst.(1)

let test_dp_key_hashed_matches_packed () =
  (* The same logical table under a packed codec and under a codec too
     wide to pack (forcing the hashed fallback): identical totals and
     projections. *)
  let cp = Dp_key.codec ~n:8 in
  let ch = Dp_key.codec ~n:(1 lsl 21) in
  check_bool "narrow codec packs" true (Dp_key.packs cp ~arity:4);
  check_bool "wide codec does not pack" false (Dp_key.packs ch ~arity:4);
  let tp = Dp_key.table cp ~arity:4 in
  let th = Dp_key.table ch ~arity:4 in
  check_bool "packed mode" true (Dp_key.is_packed tp);
  check_bool "hashed mode" false (Dp_key.is_packed th);
  let entries =
    [ ([| 1; 2; 3; 4 |], 5); ([| 4; 3; 2; 1 |], 7); ([| 1; 2; 3; 4 |], 2) ]
  in
  List.iter
    (fun (k, v) ->
       Dp_key.bump cp tp (Array.copy k) (Dp_key.Count.of_int v);
       Dp_key.bump ch th (Array.copy k) (Dp_key.Count.of_int v))
    entries;
  check_int "packed entries" 2 (Dp_key.length tp);
  check_int "hashed entries" 2 (Dp_key.length th);
  check_bool "totals agree" true
    (Bigint.equal
       (Dp_key.Count.to_bigint (Dp_key.total tp))
       (Dp_key.Count.to_bigint (Dp_key.total th)));
  let pos = [| 3; 0 |] in
  let pp = Dp_key.project cp tp pos in
  let ph = Dp_key.project ch th pos in
  check_bool "projection totals agree" true
    (Bigint.equal
       (Dp_key.Count.to_bigint (Dp_key.total pp))
       (Dp_key.Count.to_bigint (Dp_key.total ph)));
  (* look up the restriction of [1;2;3;4] (-> [4;1]) in both *)
  let images = [| 1; 2; 3; 4 |] in
  check_bool "projected lookup agrees" true
    (Bigint.equal
       (Dp_key.Count.to_bigint (Dp_key.find cp pp images pos))
       (Dp_key.Count.to_bigint (Dp_key.find ch ph images pos)))

let test_count_overflow_promotion () =
  let open Wlcq_util.Count in
  let near = of_int (max_int - 1) in
  check_bool "small stays small" true (is_small (add (of_int 1) (of_int 1)));
  let sum = add near near in
  check_bool "add promotes on overflow" false (is_small sum);
  check_bool "promoted add exact" true
    (Bigint.equal (to_bigint sum)
       (Bigint.add (Bigint.of_int (max_int - 1)) (Bigint.of_int (max_int - 1))));
  let prod = mul near near in
  check_bool "mul promotes on overflow" false (is_small prod);
  check_bool "promoted mul exact" true
    (Bigint.equal (to_bigint prod)
       (Bigint.mul (Bigint.of_int (max_int - 1)) (Bigint.of_int (max_int - 1))));
  check_bool "of_bigint normalises" true
    (is_small (of_bigint (Bigint.of_int 42)));
  check_bool "mul by zero" true (is_zero (mul (of_int 0) near))

let random_candidates rng nh ng =
  let sets =
    Array.init nh (fun _ ->
        let b = Bitset.create ng in
        for v = 0 to ng - 1 do
          if Prng.bool rng then Bitset.set b v
        done;
        b)
  in
  fun u -> sets.(u)

let packed_vs_reference_qcheck =
  [
    QCheck.Test.make ~name:"packed td count equals reference oracle" ~count:80
      QCheck.(triple (int_range 1 7) (int_range 1 12) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.4 in
         Bigint.equal (Td_count.count h g) (Td_count.count_reference h g));
    QCheck.Test.make
      ~name:"packed td count equals reference under random candidates"
      ~count:60
      QCheck.(triple (int_range 1 6) (int_range 1 9) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.4 in
         let candidates = random_candidates rng nh ng in
         Bigint.equal
           (Td_count.count ~candidates h g)
           (Td_count.count_reference ~candidates h g));
    QCheck.Test.make
      ~name:"pins as singleton candidates match Brute ~pins" ~count:60
      QCheck.(triple (int_range 2 6) (int_range 2 8) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.5 in
         let u = Prng.int rng nh and v = Prng.int rng ng in
         let candidates w =
           if w = u then Bitset.singleton ng v else Bitset.full ng
         in
         Bigint.equal
           (Td_count.count ~candidates h g)
           (Bigint.of_int (Brute.count ~pins:[ (u, v) ] h g)));
    QCheck.Test.make
      ~name:"forced-parallel and forced-sequential runs byte-identical"
      ~count:40
      QCheck.(triple (int_range 2 5) (int_range 2 9) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         (* disjoint-union patterns give the decomposition root several
            independent subtrees, so the fan-out path really runs *)
         let h1 = Gen.gnp rng nh 0.6 in
         let h2 = Gen.gnp rng nh 0.5 in
         let h = Ops.disjoint_union h1 h2 in
         let g = Gen.gnp rng ng 0.4 in
         Td_count.parallel_threshold := 0;
         let par = Td_count.count h g in
         Td_count.parallel_threshold := max_int;
         let seq = Td_count.count h g in
         Td_count.parallel_threshold := 1 lsl 15;
         String.equal (Bigint.to_string par) (Bigint.to_string seq));
    QCheck.Test.make ~name:"packed nice count equals reference oracle"
      ~count:60
      QCheck.(triple (int_range 1 6) (int_range 1 9) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.4 in
         Bigint.equal (Nice_count.count h g) (Nice_count.count_reference h g));
    QCheck.Test.make
      ~name:"count_many equals independent reference counts on prefix chain"
      ~count:40
      QCheck.(triple (int_range 2 6) (int_range 1 8) (int_bound 100000))
      (fun (n, ng, seed) ->
         let rng = Prng.create seed in
         let hmax = Gen.gnp rng n 0.5 in
         let g = Gen.gnp rng ng 0.4 in
         let prefixes =
           List.init n (fun i ->
               let sub, _ = Ops.induced hmax (List.init (i + 1) (fun j -> j)) in
               sub)
         in
         let batch = Td_count.count_many prefixes g in
         let indiv = List.map (fun h -> Td_count.count_reference h g) prefixes in
         List.for_all2 Bigint.equal batch indiv);
    QCheck.Test.make
      ~name:"count_many under candidates equals per-pattern counts" ~count:30
      QCheck.(triple (int_range 2 5) (int_range 1 7) (int_bound 100000))
      (fun (n, ng, seed) ->
         let rng = Prng.create seed in
         let hs =
           List.init n (fun _ -> Gen.gnp rng (1 + Prng.int rng n) 0.5)
         in
         let g = Gen.gnp rng ng 0.4 in
         let max_nh =
           List.fold_left (fun a h -> max a (Graph.num_vertices h)) 1 hs
         in
         let candidates = random_candidates rng max_nh ng in
         let batch = Td_count.count_many ~candidates hs g in
         let indiv =
           List.map (fun h -> Td_count.count_reference ~candidates h g) hs
         in
         List.for_all2 Bigint.equal batch indiv);
  ]

(* ------------------------------------------------------------------ *)
(* Colored                                                             *)
(* ------------------------------------------------------------------ *)

let test_is_colouring () =
  let g = Builders.cycle 6 and f = Builders.clique 2 in
  check_bool "C6 is K2-colourable" true
    (Colored.is_colouring g f [| 0; 1; 0; 1; 0; 1 |]);
  check_bool "bad colouring rejected" false
    (Colored.is_colouring g f [| 0; 0; 1; 0; 1; 0 |])

let test_partition_identity () =
  (* Observation 31 on a concrete instance *)
  let h = Builders.path 3 in
  let g = Builders.cycle 6 in
  let f = Builders.clique 2 in
  let c = [| 0; 1; 0; 1; 0; 1 |] in
  let sum, total = Colored.partition_check ~h ~g ~f ~c in
  check_int "partition sums to total" total sum

let test_cp_hom () =
  (* G = two disjoint copies of H, coloured by the copy projection:
     colour-prescribed homs pick one vertex per colour class; for H=K2
     each copy contributes its edge in 1 prescribed way, and mixing
     copies is non-adjacent, so count = 2 *)
  let h = Builders.clique 2 in
  let g = Builders.matching 2 in
  let c = [| 0; 1; 0; 1 |] in
  check_int "cp homs in doubled K2" 2 (Colored.count_cp_hom ~h ~g ~c)

let colored_qcheck =
  [
    QCheck.Test.make ~name:"Observation 31: Hom_tau partitions Hom"
      ~count:30
      QCheck.(pair (int_range 1 4) (int_bound 100000))
      (fun (nh, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.6 in
         let f = Builders.clique 3 in
         (* G = tensor product F x K2 with projection colouring *)
         let g = Ops.tensor_product f (Builders.clique 2) in
         let c = Array.init (Graph.num_vertices g) (fun v -> v / 2) in
         let sum, total = Colored.partition_check ~h ~g ~f ~c in
         sum = total);
  ]

(* ------------------------------------------------------------------ *)
(* Inj                                                                 *)
(* ------------------------------------------------------------------ *)

let test_inj_known () =
  (* injective homs K3 -> K4: 4*3*2 = 24 *)
  check_int "Inj(K3,K4)" 24 (Inj.count (Builders.clique 3) (Builders.clique 4));
  (* injective homs P3 -> C5: 5*2*1 (each middle vertex, two directions,
     endpoints distinct automatically) = 10 ordered paths * ... direct:
     paths of length 2 in C5: 5 centres, 2 orders -> 10 *)
  check_int "Inj(P3,C5)" 10 (Inj.count (Builders.path 3) (Builders.cycle 5));
  check_int "Inj bigger pattern" 0
    (Inj.count (Builders.clique 4) (Builders.clique 3))

let test_inj_quotients_agree () =
  let cases =
    [
      (Builders.path 3, Builders.cycle 5);
      (Builders.star 3, Builders.clique 4);
      (Builders.cycle 4, Builders.clique 4);
      (Builders.clique 2, Builders.petersen ());
    ]
  in
  List.iter
    (fun (h, g) ->
       check_int "quotient IE agrees" (Inj.count h g)
         (Inj.count_by_quotients h g))
    cases

let test_subgraph_copies () =
  (* C5 contains 5 copies of P3; K4 contains 4 triangles *)
  check_int "P3 copies in C5" 5
    (Inj.count_subgraph_copies (Builders.path 3) (Builders.cycle 5));
  check_int "triangles in K4" 4
    (Inj.count_subgraph_copies (Builders.clique 3) (Builders.clique 4));
  check_int "edges of petersen" 15
    (Inj.count_subgraph_copies (Builders.clique 2) (Builders.petersen ()))

let inj_qcheck =
  [
    QCheck.Test.make ~name:"inclusion-exclusion over quotients" ~count:40
      QCheck.(triple (int_range 1 4) (int_range 1 5) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.5 in
         Inj.count h g = Inj.count_by_quotients h g);
    QCheck.Test.make ~name:"inj bounded by hom" ~count:40
      QCheck.(triple (int_range 1 4) (int_range 1 5) (int_bound 100000))
      (fun (nh, ng, seed) ->
         let rng = Prng.create seed in
         let h = Gen.gnp rng nh 0.5 in
         let g = Gen.gnp rng ng 0.5 in
         Inj.count h g <= Brute.count h g);
  ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_hom"
    [
      ( "brute",
        [
          Alcotest.test_case "known counts" `Quick test_known_hom_counts;
          Alcotest.test_case "walk counts" `Quick test_hom_walks;
          Alcotest.test_case "pins" `Quick test_hom_pins;
          Alcotest.test_case "empty cases" `Quick test_hom_empty_cases;
          Alcotest.test_case "enumerate" `Quick test_enumerate_valid;
        ] );
      ( "td_count",
        [
          Alcotest.test_case "matches brute" `Quick test_td_matches_brute_known;
          Alcotest.test_case "large counts" `Quick test_td_large_count;
          Alcotest.test_case "nice DP matches" `Quick test_nice_count_matches;
        ] );
      qsuite "td-properties" td_qcheck;
      ( "packed-engine",
        [
          Alcotest.test_case "dp_key pack/unpack/restrict" `Quick
            test_dp_key_roundtrip;
          Alcotest.test_case "hashed fallback matches packed" `Quick
            test_dp_key_hashed_matches_packed;
          Alcotest.test_case "count overflow promotion" `Quick
            test_count_overflow_promotion;
        ] );
      qsuite "packed-vs-reference" packed_vs_reference_qcheck;
      ( "colored",
        [
          Alcotest.test_case "is_colouring" `Quick test_is_colouring;
          Alcotest.test_case "partition identity" `Quick
            test_partition_identity;
          Alcotest.test_case "cp homs" `Quick test_cp_hom;
        ] );
      qsuite "colored-properties" colored_qcheck;
      ( "inj",
        [
          Alcotest.test_case "known counts" `Quick test_inj_known;
          Alcotest.test_case "quotient IE" `Quick test_inj_quotients_agree;
          Alcotest.test_case "subgraph copies" `Quick test_subgraph_copies;
        ] );
      qsuite "inj-properties" inj_qcheck;
    ]
