open Wlcq_graph
module Obs = Wlcq_obs.Obs
module Snapshot = Wlcq_obs.Snapshot
module Kwl = Wlcq_wl.Kwl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* All tests share the global registry; each starts from a clean,
   enabled slate and leaves recording off. *)
let with_obs ?(tracing = false) f =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_tracing tracing;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_tracing false;
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Counters and distributions                                          *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  with_obs (fun () ->
      let c = Obs.counter "test.basics" in
      check_int "fresh counter is zero" 0 (Obs.counter_value c);
      Obs.incr c;
      Obs.add c 41;
      check_int "incr + add" 42 (Obs.counter_value c);
      (* registration is idempotent: same handle, same cells *)
      let c' = Obs.counter "test.basics" in
      Obs.incr c';
      check_int "second handle shares the cells" 43 (Obs.counter_value c);
      check_bool "find_counter finds it" true
        (match Obs.find_counter "test.basics" with
         | Some c'' -> Obs.counter_value c'' = 43
         | None -> false);
      check_bool "find_counter does not register" true
        (Option.is_none (Obs.find_counter "test.never_registered")))

let test_disabled_is_noop () =
  with_obs (fun () ->
      let c = Obs.counter "test.noop" in
      let d = Obs.distribution "test.noop_dist" in
      Obs.set_enabled false;
      Obs.incr c;
      Obs.add c 10;
      Obs.observe d 7;
      ignore (Obs.span "test.noop_span" (fun () -> 0));
      Obs.set_enabled true;
      check_int "disabled incr/add recorded nothing" 0 (Obs.counter_value c);
      check_int "disabled observe recorded nothing" 0
        (Obs.distribution_value d).Obs.d_count;
      check_bool "disabled span recorded nothing" true
        (List.for_all
           (fun (s : Obs.span_summary) ->
              not (String.equal s.Obs.s_path "test.noop_span"))
           (Obs.span_summaries ())))

let test_distribution_summary () =
  with_obs (fun () ->
      let d = Obs.distribution "test.dist" in
      List.iter (Obs.observe d) [ 5; -3; 12; 0 ];
      let s = Obs.distribution_value d in
      check_int "count" 4 s.Obs.d_count;
      check_int "sum" 14 s.Obs.d_sum;
      check_int "min" (-3) s.Obs.d_min;
      check_int "max" 12 s.Obs.d_max)

let test_reset_semantics () =
  with_obs ~tracing:true (fun () ->
      let c = Obs.counter "test.reset" in
      Obs.incr c;
      ignore (Obs.span "test.reset_span" (fun () -> 0));
      check_bool "trace has events before reset" true
        (String.length (Obs.trace_json ()) > 2);
      Obs.reset ~keep_trace:true ();
      check_int "reset zeroes the counter" 0 (Obs.counter_value c);
      check_bool "keep_trace preserves the trace log" true
        (String.length (Obs.trace_json ()) > 2);
      check_bool "reset drops span summaries" true
        (List.is_empty (Obs.span_summaries ()));
      Obs.reset ();
      check_bool "plain reset clears the trace" true
        (String.equal (Obs.trace_json ()) "[]"
         || String.length (Obs.trace_json ()) <= 3))

let test_hit_rate () =
  with_obs (fun () ->
      let h = Obs.counter "test.hits" in
      let m = Obs.counter "test.misses" in
      check_bool "no events -> None" true
        (Option.is_none
           (Obs.report_hit_rate ~hits:"test.hits" ~misses:"test.misses"));
      check_bool "unregistered -> None" true
        (Option.is_none
           (Obs.report_hit_rate ~hits:"test.nope" ~misses:"test.misses"));
      Obs.add h 3;
      Obs.add m 1;
      match Obs.report_hit_rate ~hits:"test.hits" ~misses:"test.misses" with
      | Some r -> check_bool "3/(3+1)" true (Float.abs (r -. 0.75) < 1e-9)
      | None -> Alcotest.fail "expected Some rate")

(* ------------------------------------------------------------------ *)
(* Concurrency: striped counters under Domain.spawn                    *)
(* ------------------------------------------------------------------ *)

let concurrent_sum_exact num_domains per_domain =
  Obs.reset ();
  Obs.set_enabled true;
  let c = Obs.counter "test.concurrent" in
  let workers =
    List.init num_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.incr c
            done))
  in
  List.iter Domain.join workers;
  let v = Obs.counter_value c in
  Obs.set_enabled false;
  Obs.reset ();
  v = num_domains * per_domain

let obs_qcheck =
  [
    QCheck.Test.make
      ~name:"concurrent increments from N domains sum exactly" ~count:25
      QCheck.(pair (int_range 1 6) (int_range 0 400))
      (fun (num_domains, per_domain) ->
         concurrent_sum_exact num_domains per_domain);
  ]

(* ------------------------------------------------------------------ *)
(* Spans, nesting and the trace exporter                               *)
(* ------------------------------------------------------------------ *)

let span_count path =
  match
    List.find_opt
      (fun (s : Obs.span_summary) -> String.equal s.Obs.s_path path)
      (Obs.span_summaries ())
  with
  | Some s -> s.Obs.s_count
  | None -> 0

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.span "outer" (fun () ->
            let a = Obs.span "inner" (fun () -> 20) in
            let b = Obs.span "inner" (fun () -> 22) in
            a + b)
      in
      check_int "span passes the result through" 42 r;
      check_int "outer recorded once" 1 (span_count "outer");
      check_int "nested path aggregates both calls" 2
        (span_count "outer/inner");
      check_int "no bare 'inner' path" 0 (span_count "inner"))

let test_span_exception_safety () =
  with_obs (fun () ->
      (try
         Obs.span "outer" (fun () ->
             ignore
               (Obs.span "boom" (fun () ->
                    failwith "Test_obs.span_exception_safety: boom")))
       with Failure _ -> ());
      check_int "raising span still recorded" 1 (span_count "outer/boom");
      check_int "parent recorded despite child raising" 1 (span_count "outer");
      (* the nesting stack must have been unwound *)
      ignore (Obs.span "after" (fun () -> ()));
      check_int "stack unwound: no outer/after" 1 (span_count "after"))

let test_trace_json_well_formed () =
  with_obs ~tracing:true (fun () ->
      ignore
        (Obs.span "outer" ~attrs:[ ("k", "2"); ("graph", "C6") ] (fun () ->
             Obs.span "inner" (fun () -> 7)));
      let j = Obs.trace_json () in
      check_bool "trace parses as JSON" true (Obs.json_parseable j);
      check_bool "trace is an array" true
        (String.length j >= 2 && j.[0] = '[');
      let contains needle =
        let n = String.length needle and h = String.length j in
        let rec go i =
          i + n <= h && (String.equal (String.sub j i n) needle || go (i + 1))
        in
        go 0
      in
      check_bool "complete-event phase present" true
        (contains "\"ph\": \"X\"" || contains "\"ph\":\"X\"");
      check_bool "attrs exported" true (contains "\"graph\""))

let test_json_acceptor_rejects_garbage () =
  check_bool "accepts object" true
    (Obs.json_parseable "{\"a\": [1, 2.5e1, true, null, \"s\"]}");
  check_bool "accepts empty array" true (Obs.json_parseable "[]");
  List.iter
    (fun s ->
       check_bool (Printf.sprintf "rejects %S" s) false (Obs.json_parseable s))
    [ ""; "{"; "[1,]"; "[] trailing"; "{\"a\": }"; "nul"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Histogram buckets and quantiles                                     *)
(* ------------------------------------------------------------------ *)

let test_bucket_geometry () =
  check_int "v <= 0 lands in bucket 0" 0 (Obs.bucket_of 0);
  check_int "negative lands in bucket 0" 0 (Obs.bucket_of (-7));
  check_int "1 lands in bucket 1" 1 (Obs.bucket_of 1);
  check_int "2..3 land in bucket 2" 2 (Obs.bucket_of 3);
  check_int "bucket 0 upper" 0 (Obs.bucket_upper 0);
  check_int "bucket 2 upper" 3 (Obs.bucket_upper 2);
  check_int "last bucket holds max_int" (Obs.num_buckets - 1)
    (Obs.bucket_of max_int);
  check_int "last bucket upper is max_int" max_int
    (Obs.bucket_upper (Obs.num_buckets - 1));
  (* every v sits within its bucket's bounds *)
  List.iter
    (fun v ->
       let b = Obs.bucket_of v in
       check_bool "v <= upper(bucket_of v)" true (v <= Obs.bucket_upper b);
       check_bool "v > upper(bucket_of v - 1)" true
         (b = 0 || v > Obs.bucket_upper (b - 1)))
    [ 1; 2; 4; 5; 100; 1023; 1024; 123_456_789 ]

let test_quantile_empty_and_bounds () =
  with_obs (fun () ->
      let d = Obs.distribution "test.q_empty" in
      check_bool "empty distribution -> None" true
        (Option.is_none (Obs.quantile d 0.5));
      check_bool "q out of range raises" true
        (try
           ignore (Obs.quantile d 1.5);
           false
         with Invalid_argument _ -> true);
      Obs.observe d 100;
      check_bool "single value: p50 covers it within a bucket" true
        (match Obs.quantile d 0.5 with
         | Some e -> e >= 100 && e < 200
         | None -> false))

(* The documented contract: for a true positive quantile [t], the
   histogram estimate [e] satisfies [t <= e < 2t] (and is clamped to
   the observed maximum). *)
let quantile_within_one_bucket (values, q) =
  match values with
  | [] -> true
  | _ ->
    Obs.reset ();
    Obs.set_enabled true;
    let d = Obs.distribution "test.q_prop" in
    List.iter (Obs.observe d) values;
    let sorted = Array.of_list (List.sort Int.compare values) in
    let n = Array.length sorted in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let t = sorted.(rank - 1) in
    let vmax = List.fold_left max min_int values in
    let ok =
      match Obs.quantile d q with
      | None -> false
      | Some e -> t <= e && e < 2 * t && e <= vmax
    in
    Obs.set_enabled false;
    Obs.reset ();
    ok

let quantile_qcheck =
  [
    QCheck.Test.make
      ~name:"histogram quantile is within one log2 bucket of the truth"
      ~count:200
      QCheck.(
        pair
          (list_of_size Gen.(int_range 1 60) (int_range 1 100_000))
          (float_range 0.01 1.0))
      quantile_within_one_bucket;
  ]

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let with_journal f =
  Obs.reset ();
  Obs.set_journal true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_journal false;
      Obs.reset ())
    f

let test_journal_off_by_default () =
  Obs.reset ();
  check_bool "journal off by default" false (Obs.journal_on ());
  Obs.journal "test.dropped";
  check_bool "disarmed journal records nothing" true
    (List.is_empty (Obs.journal_entries ()))

let test_journal_basics () =
  with_journal (fun () ->
      Obs.journal ~severity:Obs.Warn
        ~attrs:[ ("reason", "deadline"); ("n", "3") ]
        ~component:"test.engine" "test.event";
      Obs.journal "test.second";
      match Obs.journal_entries () with
      | [ e1; e2 ] ->
        check_str "msg" "test.event" e1.Obs.j_msg;
        check_str "component" "test.engine" e1.Obs.j_component;
        check_bool "severity" true
          (match e1.Obs.j_severity with Obs.Warn -> true | _ -> false);
        check_bool "attrs kept in order" true
          (List.equal
             (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
             e1.Obs.j_attrs
             [ ("reason", "deadline"); ("n", "3") ]);
        check_bool "sorted by timestamp" true
          (Int64.compare e1.Obs.j_ts_ns e2.Obs.j_ts_ns <= 0)
      | es ->
        Alcotest.failf "expected exactly 2 journal entries, got %d"
          (List.length es))

let test_journal_jsonl_parseable () =
  with_journal (fun () ->
      Obs.journal ~attrs:[ ("quote", "a\"b"); ("nl", "x\ny") ]
        "needs \\ escaping";
      Obs.journal ~severity:Obs.Error "second";
      let lines =
        String.split_on_char '\n' (String.trim (Obs.journal_jsonl ()))
      in
      check_int "one line per event" 2 (List.length lines);
      List.iter
        (fun l ->
           check_bool "journal line is strict JSON" true
             (Obs.json_parseable l))
        lines)

let test_journal_ring_bounded () =
  with_journal (fun () ->
      (* all from one domain, so one stripe: the ring must keep only
         the newest [journal_capacity] events *)
      let total = (3 * Obs.journal_capacity) + 5 in
      for i = 1 to total do
        Obs.journal ~attrs:[ ("i", string_of_int i) ] "test.flood"
      done;
      let entries = Obs.journal_entries () in
      check_int "ring bounded at journal_capacity" Obs.journal_capacity
        (List.length entries);
      let seqnos =
        List.map
          (fun e ->
             match e.Obs.j_attrs with
             | [ ("i", v) ] -> int_of_string v
             | _ -> Alcotest.fail "torn attrs on flooded event")
          entries
      in
      check_int "the survivors are the newest events"
        (total - Obs.journal_capacity + 1)
        (List.fold_left min max_int seqnos);
      check_int "...up to the last one" total
        (List.fold_left max min_int seqnos))

let test_journal_dump_writes_file () =
  with_journal (fun () ->
      let file = Filename.temp_file "wlcq_test_journal" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Obs.set_journal_dump None;
          Sys.remove file)
        (fun () ->
          Obs.set_journal_dump (Some file);
          Obs.journal ~component:"test.engine" "before.dump";
          Obs.journal_dump ~trigger:"test" ();
          let contents =
            In_channel.with_open_bin file In_channel.input_all
          in
          let lines = String.split_on_char '\n' (String.trim contents) in
          check_bool "dump has the event plus the dump marker" true
            (List.length lines >= 2);
          List.iter
            (fun l ->
               check_bool "dump line is strict JSON" true
                 (Obs.json_parseable l))
            lines;
          let last =
            match List.rev lines with l :: _ -> l | [] -> ""
          in
          let contains needle s =
            let n = String.length needle and h = String.length s in
            let rec go i =
              i + n <= h
              && (String.equal (String.sub s i n) needle || go (i + 1))
            in
            go 0
          in
          check_bool "last line is the journal.dump marker" true
            (contains "journal.dump" last);
          check_bool "dump names its trigger" true (contains "test" last)))

(* Concurrent writers: no lost ring slots below capacity, no torn
   events, and each domain's events carry its own sequence intact. *)
let concurrent_journal_intact (num_domains, per_domain) =
  Obs.reset ();
  Obs.set_journal true;
  let workers =
    List.init num_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.journal
                ~attrs:
                  [ ("writer", string_of_int d); ("i", string_of_int i) ]
                "test.concurrent"
            done))
  in
  let tids = List.map (fun w -> (Domain.get_id w :> int)) workers in
  List.iter Domain.join workers;
  let entries = Obs.journal_entries () in
  Obs.set_journal false;
  Obs.reset ();
  (* every event is whole: its tid is a spawned writer and its attrs
     parse back to a plausible (writer, i) pair *)
  let whole =
    List.for_all
      (fun e ->
         List.mem e.Obs.j_tid tids
         &&
         match e.Obs.j_attrs with
         | [ ("writer", w); ("i", i) ] ->
           let w = int_of_string w and i = int_of_string i in
           w >= 0 && w < num_domains && i >= 1 && i <= per_domain
         | _ -> false)
      entries
  in
  (* per writer: sequence numbers are distinct (an event is recorded
     at most once, never duplicated by a racing overwrite) *)
  let per_writer_distinct =
    List.for_all
      (fun d ->
         let is =
           List.filter_map
             (fun e ->
                match e.Obs.j_attrs with
                | [ ("writer", w); ("i", i) ]
                  when int_of_string w = d ->
                  Some (int_of_string i)
                | _ -> None)
             entries
         in
         List.length (List.sort_uniq Int.compare is) = List.length is)
      (List.init num_domains Fun.id)
  in
  whole && per_writer_distinct
  && List.length entries <= num_domains * per_domain

let journal_qcheck =
  [
    QCheck.Test.make
      ~name:"concurrent journal writes from N domains stay whole" ~count:15
      QCheck.(pair (int_range 1 6) (int_range 1 64))
      concurrent_journal_intact;
  ]

(* ------------------------------------------------------------------ *)
(* Entry points and scopes                                             *)
(* ------------------------------------------------------------------ *)

let test_entry_point_scope_and_histogram () =
  with_obs (fun () ->
      check_str "no scope outside entries" "" (Obs.current_scope ());
      let r =
        Obs.entry_point "test_engine.count" (fun () ->
            check_str "scope set inside" "test_engine.count"
              (Obs.current_scope ());
            Obs.entry_point "test_engine.inner" (fun () ->
                check_str "innermost entry wins" "test_engine.inner"
                  (Obs.current_scope ()));
            check_str "scope restored after nested exit" "test_engine.count"
              (Obs.current_scope ());
            17)
      in
      check_int "entry_point passes the result through" 17 r;
      check_bool "wall-time histogram observed" true
        (match Obs.find_distribution "entry.test_engine.count.wall_ns" with
         | Some d -> (Obs.distribution_value d).Obs.d_count = 1
         | None -> false))

let test_entry_point_worker_fallback () =
  with_journal (fun () ->
      Obs.entry_point "test_engine.outer" (fun () ->
          let w =
            Domain.spawn (fun () ->
                (* a worker spawned mid-entry inherits the engine scope
                   through the best-effort fallback *)
                Obs.journal "from.worker";
                Obs.current_scope ())
          in
          check_str "worker sees the spawning entry" "test_engine.outer"
            (Domain.join w));
      match
        List.find_opt
          (fun e -> String.equal e.Obs.j_msg "from.worker")
          (Obs.journal_entries ())
      with
      | Some e ->
        check_str "journal component defaulted to the engine scope"
          "test_engine.outer" e.Obs.j_component
      | None -> Alcotest.fail "worker journal event not recorded")

(* ------------------------------------------------------------------ *)
(* Allocation profiling and the folded exporter                        *)
(* ------------------------------------------------------------------ *)

let test_alloc_profiling_attribution () =
  with_obs (fun () ->
      Obs.set_alloc_profiling true;
      Fun.protect
        ~finally:(fun () -> Obs.set_alloc_profiling false)
        (fun () ->
          ignore
            (Obs.span "test.allocating" (fun () ->
                 (* ~100k minor words, comfortably above noise *)
                 let acc = ref [] in
                 for i = 1 to 50_000 do
                   acc := (i, i) :: !acc
                 done;
                 List.length !acc));
          match
            List.find_opt
              (fun (s : Obs.span_summary) ->
                 String.equal s.Obs.s_path "test.allocating")
              (Obs.span_summaries ())
          with
          | Some s ->
            check_bool "minor words attributed" true
              (s.Obs.s_minor_words > 10_000)
          | None -> Alcotest.fail "span summary missing"))

let test_folded_exporter () =
  with_obs (fun () ->
      ignore
        (Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> 1)));
      let folded = Obs.folded () in
      let lines = String.split_on_char '\n' (String.trim folded) in
      check_bool "one line per path" true (List.length lines >= 2);
      List.iter
        (fun l ->
           (* collapsed-stack shape: 'a;b;c <int>' *)
           match String.rindex_opt l ' ' with
           | None -> Alcotest.failf "folded line without weight: %s" l
           | Some i ->
             let w = String.sub l (i + 1) (String.length l - i - 1) in
             check_bool "weight is an integer" true
               (match int_of_string_opt w with
                | Some n -> n >= 0
                | None -> false))
        lines;
      check_bool "nested path uses ; separators" true
        (List.exists
           (fun l ->
              String.length l >= 11
              && String.equal (String.sub l 0 11) "outer;inner")
           lines))

(* ------------------------------------------------------------------ *)
(* Trace determinism (PR 8 satellite: stable sort by (ts, tid, name))  *)
(* ------------------------------------------------------------------ *)

let test_trace_deterministic_across_domains () =
  with_obs ~tracing:true (fun () ->
      let workers =
        List.init 3 (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to 5 do
                  Obs.span (Printf.sprintf "w%d.s%d" d i) (fun () -> ())
                done))
      in
      List.iter Domain.join workers;
      let j1 = Obs.trace_json () in
      let j2 = Obs.trace_json () in
      check_str "two renders are byte-identical" j1 j2;
      check_bool "trace parses" true (Obs.json_parseable j1);
      (* timestamps appear in nondecreasing order *)
      let ts =
        let key = "\"ts\": " in
        let klen = String.length key and len = String.length j1 in
        let rec collect i acc =
          if i + klen > len then List.rev acc
          else if String.equal (String.sub j1 i klen) key then begin
            let j = ref (i + klen) in
            while
              !j < len
              && (match j1.[!j] with '0' .. '9' | '.' -> true | _ -> false)
            do
              incr j
            done;
            collect !j
              (float_of_string (String.sub j1 (i + klen) (!j - i - klen))
               :: acc)
          end
          else collect (i + 1) acc
        in
        collect 0 []
      in
      check_bool "events sorted by timestamp" true
        (fst
           (List.fold_left
              (fun (ok, prev) t -> (ok && t >= prev, t))
              (true, neg_infinity) ts)))

(* ------------------------------------------------------------------ *)
(* Snapshots: OpenMetrics render/parse/diff                            *)
(* ------------------------------------------------------------------ *)

let snapshot_equal (a : Snapshot.t) (b : Snapshot.t) =
  a.Snapshot.s_counters = b.Snapshot.s_counters
  && List.length a.Snapshot.s_hists = List.length b.Snapshot.s_hists
  && List.for_all2
       (fun (n1, h1) (n2, h2) ->
          String.equal n1 n2
          && h1.Snapshot.h_count = h2.Snapshot.h_count
          && h1.Snapshot.h_sum = h2.Snapshot.h_sum
          && h1.Snapshot.h_buckets = h2.Snapshot.h_buckets)
       a.Snapshot.s_hists b.Snapshot.s_hists

let test_snapshot_roundtrip () =
  with_obs (fun () ->
      Obs.add (Obs.counter "test.snap_counter") 42;
      let d = Obs.distribution "test.snap_dist" in
      List.iter (Obs.observe d) [ 1; 5; 9; 1000 ];
      let snap = Snapshot.capture () in
      check_bool "capture saw the counter" true
        (List.mem_assoc "wlcq_test_snap_counter" snap.Snapshot.s_counters);
      let text = Snapshot.render snap in
      check_bool "render ends with EOF marker" true
        (let t = String.trim text in
         String.length t >= 5
         && String.equal (String.sub t (String.length t - 5) 5) "# EOF");
      (match Snapshot.parse text with
       | Ok back ->
         check_bool "parse . render is the identity" true
           (snapshot_equal snap back)
       | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
      check_bool "parse rejects garbage" true
        (match Snapshot.parse "wlcq_x_total nonsense\n# EOF\n" with
         | Error _ -> true
         | Ok _ -> false))

let test_snapshot_self_diff_clean () =
  with_obs (fun () ->
      Obs.add (Obs.counter "test.snap_counter") 1000;
      let d = Obs.distribution "test.snap_dist" in
      List.iter (Obs.observe d) [ 3; 7; 100; 2000 ];
      let snap = Snapshot.capture () in
      let report, regressions = Snapshot.diff snap snap in
      check_bool "self-diff report non-empty" true
        (String.length report > 0);
      check_int "self-diff has zero regressions" 0
        (List.length regressions))

let test_snapshot_detects_regression () =
  (* handcrafted snapshots: the after histogram's mass moves from the
     <=8 bucket to the <=32 bucket, a 4x p99 shift; the counter grows
     10x over the noise floor *)
  let hist buckets count sum =
    { Snapshot.h_count = count; h_sum = sum; h_buckets = buckets }
  in
  let before =
    {
      Snapshot.s_counters = [ ("wlcq_test_work_total", 100) ];
      s_hists = [ ("wlcq_test_lat_ns", hist [ (8, 10); (max_int, 10) ] 10 60) ];
    }
  in
  let after =
    {
      Snapshot.s_counters = [ ("wlcq_test_work_total", 1000) ];
      s_hists =
        [ ("wlcq_test_lat_ns", hist [ (8, 0); (32, 10); (max_int, 10) ] 10 250) ];
    }
  in
  let _, regressions = Snapshot.diff ~threshold:2.0 before after in
  check_bool "counter regression flagged" true
    (List.exists
       (fun r ->
          String.equal r.Snapshot.r_metric "wlcq_test_work_total"
          && String.equal r.Snapshot.r_what "count")
       regressions);
  check_bool "p99 regression flagged" true
    (List.exists
       (fun r ->
          String.equal r.Snapshot.r_metric "wlcq_test_lat_ns"
          && (String.equal r.Snapshot.r_what "p99"
              || String.equal r.Snapshot.r_what "p50")
          && r.Snapshot.r_ratio >= 2.0)
       regressions);
  (* raising the threshold above the injected shift silences it *)
  let _, quiet = Snapshot.diff ~threshold:20.0 before after in
  check_int "threshold 20x sees nothing" 0 (List.length quiet)

let test_snapshot_rate_mode () =
  (* a daemon that has run 4x longer and done 4x the work is healthy:
     absolute diffing flags it, rate diffing must not *)
  let snap uptime_ns work =
    {
      Snapshot.s_counters =
        [ (Snapshot.uptime_metric, uptime_ns); ("wlcq_test_work_total", work) ];
      s_hists = [];
    }
  in
  let before = snap 1_000_000_000 100 in
  let steady = snap 4_000_000_000 400 in
  let _, absolute = Snapshot.diff ~threshold:2.0 before steady in
  check_bool "absolute diff flags the 4x counter" true
    (List.exists
       (fun r ->
          String.equal r.Snapshot.r_metric "wlcq_test_work_total"
          && String.equal r.Snapshot.r_what "count")
       absolute);
  let report, rated = Snapshot.diff ~threshold:2.0 ~rate:true before steady in
  check_int "rate diff sees a steady 100/s as clean" 0 (List.length rated);
  check_bool "rate report shows per-second figures" true
    (let has_sub needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl
                      && (String.equal (String.sub hay i nl) needle || go (i + 1))
       in
       go 0
     in
     has_sub "/s" report);
  (* a genuine throughput blowup: 100/s -> 500/s over flat wall time *)
  let blowup = snap 2_000_000_000 1000 in
  let _, hot = Snapshot.diff ~threshold:2.0 ~rate:true before blowup in
  check_bool "5x rate increase flagged as a rate regression" true
    (List.exists
       (fun r ->
          String.equal r.Snapshot.r_metric "wlcq_test_work_total"
          && String.equal r.Snapshot.r_what "rate"
          && r.Snapshot.r_ratio >= 4.9)
       hot);
  check_bool "uptime itself never flagged" true
    (not
       (List.exists
          (fun r -> String.equal r.Snapshot.r_metric Snapshot.uptime_metric)
          hot));
  (* a snapshot without the uptime counter degrades to absolute mode *)
  let bare =
    { Snapshot.s_counters = [ ("wlcq_test_work_total", 400) ]; s_hists = [] }
  in
  let note, fallback = Snapshot.diff ~threshold:2.0 ~rate:true before bare in
  check_bool "fallback notes the missing uptime counter" true
    (let has_sub needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl
                      && (String.equal (String.sub hay i nl) needle || go (i + 1))
       in
       go 0
     in
     has_sub "falling back to absolute" note);
  check_bool "fallback flags in absolute terms" true
    (List.exists
       (fun r -> String.equal r.Snapshot.r_what "count")
       fallback);
  (* live captures always carry the synthetic uptime counter *)
  with_obs (fun () ->
      let live = Snapshot.capture () in
      check_bool "capture injects the uptime counter" true
        (List.mem_assoc Snapshot.uptime_metric live.Snapshot.s_counters))

(* ------------------------------------------------------------------ *)
(* Differential: instrumentation must not perturb the engines          *)
(* ------------------------------------------------------------------ *)

let test_kwl_unperturbed_by_instrumentation () =
  let pairs =
    [ (Builders.cycle 6, Builders.two_triangles ());
      (Builders.path 5, Builders.star 4) ]
  in
  List.iter
    (fun (g1, g2) ->
       Obs.reset ();
       Obs.set_enabled false;
       let p1, p2 = Kwl.run_pair 2 g1 g2 in
       Obs.set_enabled true;
       Obs.set_tracing true;
       let q1, q2 = Kwl.run_pair 2 g1 g2 in
       Obs.set_tracing false;
       Obs.set_enabled false;
       Obs.reset ();
       let arr_eq = Wlcq_util.Ordering.equal_array Int.equal in
       check_bool "colour buffers byte-identical (g1)" true
         (arr_eq p1.Kwl.colours q1.Kwl.colours);
       check_bool "colour buffers byte-identical (g2)" true
         (arr_eq p2.Kwl.colours q2.Kwl.colours);
       check_int "same colour count" p1.Kwl.num_colours q1.Kwl.num_colours;
       check_int "same round count" p1.Kwl.rounds q1.Kwl.rounds)
    pairs

let test_engine_metrics_flow () =
  (* end-to-end: a real Kwl run populates the registry and the table *)
  with_obs ~tracing:true (fun () ->
      ignore (Kwl.run 2 (Builders.path 4));
      check_bool "kwl.rounds recorded" true
        (match Obs.find_counter "kwl.rounds" with
         | Some c -> Obs.counter_value c > 0
         | None -> false);
      check_bool "kwl.run span recorded" true (span_count "kwl.run" >= 1);
      let table = Obs.metrics_table () in
      check_bool "metrics table non-empty" true (String.length table > 0);
      check_bool "trace from the run parses" true
        (Obs.json_parseable (Obs.trace_json ())))

let () =
  Alcotest.run "wlcq_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled path records nothing" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "distribution summary" `Quick
            test_distribution_summary;
          Alcotest.test_case "reset and keep_trace" `Quick
            test_reset_semantics;
          Alcotest.test_case "report_hit_rate" `Quick test_hit_rate;
        ] );
      ( "concurrency",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          (obs_qcheck @ journal_qcheck) );
      ( "histograms",
        Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry
        :: Alcotest.test_case "quantile empty and bounds" `Quick
             test_quantile_empty_and_bounds
        :: List.map (QCheck_alcotest.to_alcotest ~long:false) quantile_qcheck
      );
      ( "journal",
        [
          Alcotest.test_case "off by default" `Quick
            test_journal_off_by_default;
          Alcotest.test_case "basics" `Quick test_journal_basics;
          Alcotest.test_case "JSONL strictly parseable" `Quick
            test_journal_jsonl_parseable;
          Alcotest.test_case "ring bounded, newest survive" `Quick
            test_journal_ring_bounded;
          Alcotest.test_case "postmortem dump writes JSONL file" `Quick
            test_journal_dump_writes_file;
        ] );
      ( "entry points",
        [
          Alcotest.test_case "scope nesting and wall histogram" `Quick
            test_entry_point_scope_and_histogram;
          Alcotest.test_case "worker domains inherit the scope" `Quick
            test_entry_point_worker_fallback;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "allocation attribution" `Quick
            test_alloc_profiling_attribution;
          Alcotest.test_case "folded exporter shape" `Quick
            test_folded_exporter;
          Alcotest.test_case "trace deterministic across domains" `Quick
            test_trace_deterministic_across_domains;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "OpenMetrics roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "self-diff is clean" `Quick
            test_snapshot_self_diff_clean;
          Alcotest.test_case "injected regression detected" `Quick
            test_snapshot_detects_regression;
          Alcotest.test_case "rate mode normalises by uptime" `Quick
            test_snapshot_rate_mode;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting paths" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "trace JSON well-formed" `Quick
            test_trace_json_well_formed;
          Alcotest.test_case "JSON acceptor rejects garbage" `Quick
            test_json_acceptor_rejects_garbage;
        ] );
      ( "differential",
        [
          Alcotest.test_case "Kwl unperturbed by instrumentation" `Quick
            test_kwl_unperturbed_by_instrumentation;
          Alcotest.test_case "engine metrics flow end-to-end" `Quick
            test_engine_metrics_flow;
        ] );
    ]
