open Wlcq_graph
module Obs = Wlcq_obs.Obs
module Kwl = Wlcq_wl.Kwl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* All tests share the global registry; each starts from a clean,
   enabled slate and leaves recording off. *)
let with_obs ?(tracing = false) f =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_tracing tracing;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_tracing false;
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Counters and distributions                                          *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  with_obs (fun () ->
      let c = Obs.counter "test.basics" in
      check_int "fresh counter is zero" 0 (Obs.counter_value c);
      Obs.incr c;
      Obs.add c 41;
      check_int "incr + add" 42 (Obs.counter_value c);
      (* registration is idempotent: same handle, same cells *)
      let c' = Obs.counter "test.basics" in
      Obs.incr c';
      check_int "second handle shares the cells" 43 (Obs.counter_value c);
      check_bool "find_counter finds it" true
        (match Obs.find_counter "test.basics" with
         | Some c'' -> Obs.counter_value c'' = 43
         | None -> false);
      check_bool "find_counter does not register" true
        (Option.is_none (Obs.find_counter "test.never_registered")))

let test_disabled_is_noop () =
  with_obs (fun () ->
      let c = Obs.counter "test.noop" in
      let d = Obs.distribution "test.noop_dist" in
      Obs.set_enabled false;
      Obs.incr c;
      Obs.add c 10;
      Obs.observe d 7;
      ignore (Obs.span "test.noop_span" (fun () -> 0));
      Obs.set_enabled true;
      check_int "disabled incr/add recorded nothing" 0 (Obs.counter_value c);
      check_int "disabled observe recorded nothing" 0
        (Obs.distribution_value d).Obs.d_count;
      check_bool "disabled span recorded nothing" true
        (List.for_all
           (fun (s : Obs.span_summary) ->
              not (String.equal s.Obs.s_path "test.noop_span"))
           (Obs.span_summaries ())))

let test_distribution_summary () =
  with_obs (fun () ->
      let d = Obs.distribution "test.dist" in
      List.iter (Obs.observe d) [ 5; -3; 12; 0 ];
      let s = Obs.distribution_value d in
      check_int "count" 4 s.Obs.d_count;
      check_int "sum" 14 s.Obs.d_sum;
      check_int "min" (-3) s.Obs.d_min;
      check_int "max" 12 s.Obs.d_max)

let test_reset_semantics () =
  with_obs ~tracing:true (fun () ->
      let c = Obs.counter "test.reset" in
      Obs.incr c;
      ignore (Obs.span "test.reset_span" (fun () -> 0));
      check_bool "trace has events before reset" true
        (String.length (Obs.trace_json ()) > 2);
      Obs.reset ~keep_trace:true ();
      check_int "reset zeroes the counter" 0 (Obs.counter_value c);
      check_bool "keep_trace preserves the trace log" true
        (String.length (Obs.trace_json ()) > 2);
      check_bool "reset drops span summaries" true
        (List.is_empty (Obs.span_summaries ()));
      Obs.reset ();
      check_bool "plain reset clears the trace" true
        (String.equal (Obs.trace_json ()) "[]"
         || String.length (Obs.trace_json ()) <= 3))

let test_hit_rate () =
  with_obs (fun () ->
      let h = Obs.counter "test.hits" in
      let m = Obs.counter "test.misses" in
      check_bool "no events -> None" true
        (Option.is_none
           (Obs.report_hit_rate ~hits:"test.hits" ~misses:"test.misses"));
      check_bool "unregistered -> None" true
        (Option.is_none
           (Obs.report_hit_rate ~hits:"test.nope" ~misses:"test.misses"));
      Obs.add h 3;
      Obs.add m 1;
      match Obs.report_hit_rate ~hits:"test.hits" ~misses:"test.misses" with
      | Some r -> check_bool "3/(3+1)" true (Float.abs (r -. 0.75) < 1e-9)
      | None -> Alcotest.fail "expected Some rate")

(* ------------------------------------------------------------------ *)
(* Concurrency: striped counters under Domain.spawn                    *)
(* ------------------------------------------------------------------ *)

let concurrent_sum_exact num_domains per_domain =
  Obs.reset ();
  Obs.set_enabled true;
  let c = Obs.counter "test.concurrent" in
  let workers =
    List.init num_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.incr c
            done))
  in
  List.iter Domain.join workers;
  let v = Obs.counter_value c in
  Obs.set_enabled false;
  Obs.reset ();
  v = num_domains * per_domain

let obs_qcheck =
  [
    QCheck.Test.make
      ~name:"concurrent increments from N domains sum exactly" ~count:25
      QCheck.(pair (int_range 1 6) (int_range 0 400))
      (fun (num_domains, per_domain) ->
         concurrent_sum_exact num_domains per_domain);
  ]

(* ------------------------------------------------------------------ *)
(* Spans, nesting and the trace exporter                               *)
(* ------------------------------------------------------------------ *)

let span_count path =
  match
    List.find_opt
      (fun (s : Obs.span_summary) -> String.equal s.Obs.s_path path)
      (Obs.span_summaries ())
  with
  | Some s -> s.Obs.s_count
  | None -> 0

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.span "outer" (fun () ->
            let a = Obs.span "inner" (fun () -> 20) in
            let b = Obs.span "inner" (fun () -> 22) in
            a + b)
      in
      check_int "span passes the result through" 42 r;
      check_int "outer recorded once" 1 (span_count "outer");
      check_int "nested path aggregates both calls" 2
        (span_count "outer/inner");
      check_int "no bare 'inner' path" 0 (span_count "inner"))

let test_span_exception_safety () =
  with_obs (fun () ->
      (try
         Obs.span "outer" (fun () ->
             ignore
               (Obs.span "boom" (fun () ->
                    failwith "Test_obs.span_exception_safety: boom")))
       with Failure _ -> ());
      check_int "raising span still recorded" 1 (span_count "outer/boom");
      check_int "parent recorded despite child raising" 1 (span_count "outer");
      (* the nesting stack must have been unwound *)
      ignore (Obs.span "after" (fun () -> ()));
      check_int "stack unwound: no outer/after" 1 (span_count "after"))

let test_trace_json_well_formed () =
  with_obs ~tracing:true (fun () ->
      ignore
        (Obs.span "outer" ~attrs:[ ("k", "2"); ("graph", "C6") ] (fun () ->
             Obs.span "inner" (fun () -> 7)));
      let j = Obs.trace_json () in
      check_bool "trace parses as JSON" true (Obs.json_parseable j);
      check_bool "trace is an array" true
        (String.length j >= 2 && j.[0] = '[');
      let contains needle =
        let n = String.length needle and h = String.length j in
        let rec go i =
          i + n <= h && (String.equal (String.sub j i n) needle || go (i + 1))
        in
        go 0
      in
      check_bool "complete-event phase present" true
        (contains "\"ph\": \"X\"" || contains "\"ph\":\"X\"");
      check_bool "attrs exported" true (contains "\"graph\""))

let test_json_acceptor_rejects_garbage () =
  check_bool "accepts object" true
    (Obs.json_parseable "{\"a\": [1, 2.5e1, true, null, \"s\"]}");
  check_bool "accepts empty array" true (Obs.json_parseable "[]");
  List.iter
    (fun s ->
       check_bool (Printf.sprintf "rejects %S" s) false (Obs.json_parseable s))
    [ ""; "{"; "[1,]"; "[] trailing"; "{\"a\": }"; "nul"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Differential: instrumentation must not perturb the engines          *)
(* ------------------------------------------------------------------ *)

let test_kwl_unperturbed_by_instrumentation () =
  let pairs =
    [ (Builders.cycle 6, Builders.two_triangles ());
      (Builders.path 5, Builders.star 4) ]
  in
  List.iter
    (fun (g1, g2) ->
       Obs.reset ();
       Obs.set_enabled false;
       let p1, p2 = Kwl.run_pair 2 g1 g2 in
       Obs.set_enabled true;
       Obs.set_tracing true;
       let q1, q2 = Kwl.run_pair 2 g1 g2 in
       Obs.set_tracing false;
       Obs.set_enabled false;
       Obs.reset ();
       let arr_eq = Wlcq_util.Ordering.equal_array Int.equal in
       check_bool "colour buffers byte-identical (g1)" true
         (arr_eq p1.Kwl.colours q1.Kwl.colours);
       check_bool "colour buffers byte-identical (g2)" true
         (arr_eq p2.Kwl.colours q2.Kwl.colours);
       check_int "same colour count" p1.Kwl.num_colours q1.Kwl.num_colours;
       check_int "same round count" p1.Kwl.rounds q1.Kwl.rounds)
    pairs

let test_engine_metrics_flow () =
  (* end-to-end: a real Kwl run populates the registry and the table *)
  with_obs ~tracing:true (fun () ->
      ignore (Kwl.run 2 (Builders.path 4));
      check_bool "kwl.rounds recorded" true
        (match Obs.find_counter "kwl.rounds" with
         | Some c -> Obs.counter_value c > 0
         | None -> false);
      check_bool "kwl.run span recorded" true (span_count "kwl.run" >= 1);
      let table = Obs.metrics_table () in
      check_bool "metrics table non-empty" true (String.length table > 0);
      check_bool "trace from the run parses" true
        (Obs.json_parseable (Obs.trace_json ())))

let () =
  Alcotest.run "wlcq_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled path records nothing" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "distribution summary" `Quick
            test_distribution_summary;
          Alcotest.test_case "reset and keep_trace" `Quick
            test_reset_semantics;
          Alcotest.test_case "report_hit_rate" `Quick test_hit_rate;
        ] );
      ( "concurrency",
        List.map (QCheck_alcotest.to_alcotest ~long:false) obs_qcheck );
      ( "spans",
        [
          Alcotest.test_case "nesting paths" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "trace JSON well-formed" `Quick
            test_trace_json_well_formed;
          Alcotest.test_case "JSON acceptor rejects garbage" `Quick
            test_json_acceptor_rejects_garbage;
        ] );
      ( "differential",
        [
          Alcotest.test_case "Kwl unperturbed by instrumentation" `Quick
            test_kwl_unperturbed_by_instrumentation;
          Alcotest.test_case "engine metrics flow end-to-end" `Quick
            test_engine_metrics_flow;
        ] );
    ]
