open Wlcq_graph
open Wlcq_cfi
module Bitset = Wlcq_util.Bitset
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Construction basics                                                 *)
(* ------------------------------------------------------------------ *)

let test_sizes () =
  (* χ(C4): every vertex has degree 2, so 2 even subsets each -> 8 *)
  check_int "chi(C4) size" 8 (Cfi.num_vertices (Cfi.even (Builders.cycle 4)));
  (* χ(K4): degree 3, 4 even subsets each -> 16 *)
  check_int "chi(K4) size" 16 (Cfi.num_vertices (Cfi.even (Builders.clique 4)));
  (* twisting does not change per-vertex counts *)
  check_int "chi(K4,{0}) size" 16
    (Cfi.num_vertices (Cfi.odd (Builders.clique 4)))

let test_projection_homomorphism () =
  List.iter
    (fun base ->
       check_bool "projection is a homomorphism (even)" true
         (Cfi.projection_is_homomorphism (Cfi.even base));
       check_bool "projection is a homomorphism (odd)" true
         (Cfi.projection_is_homomorphism (Cfi.odd base)))
    [ Builders.cycle 4; Builders.clique 4; Builders.grid 2 3;
      Builders.path 4 ]

let test_subset_parity_invariant () =
  let base = Builders.clique 4 in
  let even = Cfi.even base and odd = Cfi.odd base in
  Array.iteri
    (fun i s ->
       check_int "even twist: |S| even" 0 (Bitset.cardinal s mod 2);
       ignore i)
    even.Cfi.subset;
  Array.iteri
    (fun i s ->
       let w = odd.Cfi.projection.(i) in
       let expected = if w = 0 then 1 else 0 in
       check_int "odd twist parity" expected (Bitset.cardinal s mod 2))
    odd.Cfi.subset

let test_vertex_lookup () =
  let base = Builders.cycle 4 in
  let t = Cfi.even base in
  (* (0, {}) exists; (0, {1}) has odd parity so it does not *)
  check_bool "empty subset found" true
    (Option.is_some (Cfi.vertex t 0 (Bitset.create 4)));
  check_bool "odd subset absent" true
    (Option.is_none (Cfi.vertex t 0 (Bitset.of_list 4 [ 1 ])));
  check_bool "both neighbours found" true
    (Option.is_some (Cfi.vertex t 0 (Bitset.of_list 4 [ 1; 3 ])))

(* ------------------------------------------------------------------ *)
(* Lemma 26: parity decides isomorphism                                *)
(* ------------------------------------------------------------------ *)

let test_lemma26_same_parity () =
  List.iter
    (fun base ->
       let n = Graph.num_vertices base in
       check_bool "odd twists isomorphic" true
         (Pairs.same_parity_isomorphic base 0 (n - 1));
       (* two-element twist is isomorphic to the empty twist *)
       let both = Cfi.build base (Bitset.of_list n [ 0; 1 ]) in
       let even = Cfi.even base in
       check_bool "even twists isomorphic" true
         (Iso.isomorphic both.Cfi.graph even.Cfi.graph))
    [ Builders.cycle 4; Builders.cycle 5; Builders.clique 4 ]

let test_lemma26_different_parity () =
  List.iter
    (fun base ->
       check_bool "odd vs even not isomorphic" true
         (Pairs.parity_classes_differ base))
    [ Builders.cycle 4; Builders.cycle 5; Builders.clique 4;
      Builders.grid 2 3 ]

(* ------------------------------------------------------------------ *)
(* Lemma 27: (t-1)-WL-equivalence of twisted pairs                     *)
(* ------------------------------------------------------------------ *)

let test_lemma27_cycle () =
  (* tw(C4) = 2: the pair is 1-WL-equivalent but 2-WL separates *)
  let even, odd = Pairs.twisted_pair (Builders.cycle 4) in
  check_bool "chi(C4) pair 1-WL-equivalent" true
    (Wlcq_wl.Equivalence.equivalent 1 even.Cfi.graph odd.Cfi.graph);
  check_bool "chi(C4) pair separated by 2-WL" false
    (Wlcq_wl.Equivalence.equivalent 2 even.Cfi.graph odd.Cfi.graph)

let test_lemma27_clique () =
  (* tw(K4) = 3: the pair is 2-WL-equivalent but 3-WL separates *)
  let even, odd = Pairs.twisted_pair (Builders.clique 4) in
  check_bool "chi(K4) pair 1-WL-equivalent" true
    (Wlcq_wl.Equivalence.equivalent 1 even.Cfi.graph odd.Cfi.graph);
  check_bool "chi(K4) pair 2-WL-equivalent" true
    (Wlcq_wl.Equivalence.equivalent 2 even.Cfi.graph odd.Cfi.graph);
  check_bool "chi(K4) pair separated by 3-WL" false
    (Wlcq_wl.Equivalence.equivalent 3 even.Cfi.graph odd.Cfi.graph)

let test_lemma27_hom_counts () =
  (* Definition 19 directly: treewidth-1 patterns cannot separate the
     χ(C4) pair, and some treewidth-2 pattern can *)
  let even, odd = Pairs.twisted_pair (Builders.cycle 4) in
  check_bool "no small tree separates" true
    (Option.is_none
       (Wlcq_wl.Equivalence.hom_indistinguishable ~tw_bound:1
          ~max_pattern_size:5 even.Cfi.graph odd.Cfi.graph));
  check_bool "a tw<=2 pattern separates" true
    (Option.is_some
       (Wlcq_wl.Equivalence.hom_indistinguishable ~tw_bound:2
          ~max_pattern_size:5 even.Cfi.graph odd.Cfi.graph))

(* ------------------------------------------------------------------ *)
(* Cloning (Definition 33, Lemmas 34/35)                               *)
(* ------------------------------------------------------------------ *)

let test_clone_structure () =
  let base = Builders.cycle 4 in
  let t = Cfi.even base in
  let cloned =
    Cloning.clone ~g:t.Cfi.graph ~f:base ~c:t.Cfi.projection [ (0, 3) ]
  in
  (* colour class of 0 has 2 CFI vertices; tripling adds 4 vertices *)
  check_int "clone size" 12 (Graph.num_vertices cloned.Cloning.graph);
  check_bool "rho is a homomorphism" true
    (Cloning.rho_is_homomorphism cloned t.Cfi.graph);
  check_bool "C' is an F-colouring" true
    (Wlcq_hom.Colored.is_colouring cloned.Cloning.graph base
       cloned.Cloning.colouring)

let test_clone_identity () =
  let base = Builders.cycle 4 in
  let t = Cfi.even base in
  let cloned =
    Cloning.clone ~g:t.Cfi.graph ~f:base ~c:t.Cfi.projection [ (0, 1) ]
  in
  check_bool "multiplicity 1 is the identity" true
    (Graph.equal cloned.Cloning.graph t.Cfi.graph)

let test_lemma34_hom_scaling () =
  (* |Hom_tau(H, G', F, c')| = |Hom_tau(H, G, F, c)| * prod z_i^{d_i} *)
  let f = Builders.cycle 4 in
  let t = Cfi.even f in
  let g = t.Cfi.graph and c = t.Cfi.projection in
  let h = Builders.path 3 in
  let z = 3 in
  let cloned = Cloning.clone ~g ~f ~c [ (0, z) ] in
  Wlcq_hom.Brute.iter h f (fun tau ->
      let tau = Array.copy tau in
      let d0 = Array.fold_left (fun acc x -> if x = 0 then acc + 1 else acc) 0 tau in
      let before = Wlcq_hom.Colored.count_hom_tau ~h ~g ~f ~c ~tau in
      let after =
        Wlcq_hom.Colored.count_hom_tau ~h ~g:cloned.Cloning.graph ~f
          ~c:cloned.Cloning.colouring ~tau
      in
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      check_int "Lemma 34 scaling" (before * pow z d0) after)

let test_lemma35_clone_equivalence () =
  (* cloning preserves the (t-1)-WL-equivalence of the twisted pair *)
  let f = Builders.cycle 4 in
  let even, odd = Pairs.twisted_pair f in
  let clone t =
    Cloning.clone ~g:t.Cfi.graph ~f ~c:t.Cfi.projection [ (0, 2); (2, 3) ]
  in
  let ge = clone even and go = clone odd in
  check_bool "cloned pair still 1-WL-equivalent" true
    (Wlcq_wl.Equivalence.equivalent 1 ge.Cloning.graph go.Cloning.graph);
  check_bool "cloned pair still non-isomorphic" false
    (Iso.isomorphic ge.Cloning.graph go.Cloning.graph)

let cfi_qcheck =
  [
    QCheck.Test.make ~name:"Lemma 26 parity on random connected bases"
      ~count:10
      QCheck.(int_bound 100000)
      (fun seed ->
         let rng = Prng.create seed in
         let base = Gen.random_connected rng 5 0.3 in
         Pairs.parity_classes_differ base
         && Pairs.same_parity_isomorphic base 0
              (Graph.num_vertices base - 1));
    QCheck.Test.make ~name:"projection subsets lie in base neighbourhoods"
      ~count:20
      QCheck.(int_bound 100000)
      (fun seed ->
         let rng = Prng.create seed in
         let base = Gen.random_connected rng 5 0.4 in
         let t = Cfi.even base in
         let ok = ref true in
         Array.iteri
           (fun i s ->
              let w = t.Cfi.projection.(i) in
              if not (Bitset.subset s (Graph.neighbours base w)) then
                ok := false)
           t.Cfi.subset;
         !ok);
  ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_cfi"
    [
      ( "construction",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "projection homomorphism" `Quick
            test_projection_homomorphism;
          Alcotest.test_case "subset parity" `Quick test_subset_parity_invariant;
          Alcotest.test_case "vertex lookup" `Quick test_vertex_lookup;
        ] );
      ( "lemma26",
        [
          Alcotest.test_case "same parity isomorphic" `Quick
            test_lemma26_same_parity;
          Alcotest.test_case "different parity distinct" `Quick
            test_lemma26_different_parity;
        ] );
      ( "lemma27",
        [
          Alcotest.test_case "cycle base (tw 2)" `Quick test_lemma27_cycle;
          Alcotest.test_case "clique base (tw 3)" `Slow test_lemma27_clique;
          Alcotest.test_case "hom counts" `Quick test_lemma27_hom_counts;
        ] );
      ( "cloning",
        [
          Alcotest.test_case "structure" `Quick test_clone_structure;
          Alcotest.test_case "identity" `Quick test_clone_identity;
          Alcotest.test_case "Lemma 34 scaling" `Quick test_lemma34_hom_scaling;
          Alcotest.test_case "Lemma 35 equivalence" `Quick
            test_lemma35_clone_equivalence;
        ] );
      qsuite "properties" cfi_qcheck;
    ]
