(* Tests for the content-addressed cache tier (Wlcq_cache) and the
   canonical forms that feed it.

   The load-bearing properties:

   - canonical labelling is invariant under relabelling (isomorphic
     inputs reach byte-identical canonical graphs and digests), and the
     returned permutation really maps the input onto its canonical
     form — this is what makes content addresses sound cache keys;
   - the tier is semantically invisible: cold (capacity 0), warm-miss
     and warm-hit runs of every memoised artifact return byte-identical
     results, including across permuted-isomorphic resubmission;
   - eviction under pressure stays sound: results remain correct, the
     size accounting balances, and a full clear returns the tier to
     empty. *)

open Wlcq_graph
module Cache = Wlcq_cache.Cache
module Exact = Wlcq_treewidth.Exact
module Decomposition = Wlcq_treewidth.Decomposition
module Td_count = Wlcq_hom.Td_count
module Kwl = Wlcq_wl.Kwl
module Cq = Wlcq_core.Cq
module Parser = Wlcq_core.Parser
module Wl_dimension = Wlcq_core.Wl_dimension
module Obs = Wlcq_obs.Obs
module Prng = Wlcq_util.Prng
module Bigint = Wlcq_util.Bigint
module Bitset = Wlcq_util.Bitset
module Perm = Wlcq_util.Perm

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let rand_perm rng n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let counter_value name = Obs.counter_value (Obs.counter name)

(* every test drives the tier explicitly; start armed and empty *)
let reset_tier () =
  Obs.set_enabled true;
  Cache.set_capacity_mb 256;
  Cache.clear ()

(* byte-identical comparison for structured artifacts *)
let marshal v = Marshal.to_string v []

(* ------------------------------------------------------------------ *)
(* Canonical forms                                                     *)
(* ------------------------------------------------------------------ *)

(* (graph seed, size, permutation seed) *)
let gen_instance =
  QCheck.make
    ~print:(fun (s, n, ps) -> Printf.sprintf "seed=%d n=%d pseed=%d" s n ps)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 1 12) (int_bound 10_000))

let qcheck_canonical_invariance =
  QCheck.Test.make ~count:100 ~name:"canonical form is relabelling-invariant"
    gen_instance (fun (seed, n, pseed) ->
        let g = Gen.gnp (Prng.create (7 + seed)) n 0.4 in
        let p = rand_perm (Prng.create (13 + pseed)) n in
        let g' = Ops.relabel g p in
        let c = Iso.canonical_form g in
        let c' = Iso.canonical_form g' in
        String.equal c.Iso.digest c'.Iso.digest
        && Graph.equal c.Iso.canon c'.Iso.canon
        && Graph.equal (Ops.relabel g c.Iso.perm) c.Iso.canon
        && Graph.equal (Ops.relabel g' c'.Iso.perm) c'.Iso.canon)

let qcheck_address_invariance =
  QCheck.Test.make ~count:60 ~name:"Cache.address is relabelling-invariant"
    gen_instance (fun (seed, n, pseed) ->
        let g = Gen.gnp (Prng.create (19 + seed)) n 0.35 in
        let p = rand_perm (Prng.create (23 + pseed)) n in
        let a, _ = Cache.address g in
        let a', _ = Cache.address (Ops.relabel g p) in
        String.equal a a')

(* distinct graphs must not collide (digest injectivity up to iso on a
   small library of pairwise non-isomorphic graphs) *)
let test_addresses_separate () =
  let gs =
    [ Builders.path 5; Builders.cycle 5; Builders.cycle 6; Builders.clique 4;
      Builders.star 4; Gen.gnp (Prng.create 3) 8 0.4 ]
  in
  List.iteri
    (fun i gi ->
       List.iteri
         (fun j gj ->
            if i < j then
              Alcotest.(check bool)
                (Printf.sprintf "addresses %d/%d differ" i j)
                false
                (String.equal (fst (Cache.address gi))
                   (fst (Cache.address gj))))
         gs)
    gs

let qcheck_query_normal_form =
  (* the free-variable set rides along as an initial colouring: the
     normal form must be invariant under variable relabelling, and must
     keep free variables free *)
  QCheck.Test.make ~count:100
    ~name:"Cq.normal_form is relabelling-invariant" gen_instance
    (fun (seed, n, pseed) ->
       let rng = Prng.create (31 + seed) in
       let g = Gen.gnp rng n 0.4 in
       let free =
         List.filter (fun _ -> Prng.int rng 2 = 0) (Graph.vertices g)
       in
       let q = Cq.make g free in
       let p = rand_perm (Prng.create (37 + pseed)) n in
       let q' = Cq.relabel q p in
       let nf, perm, digest = Cq.normal_form q in
       let nf', _, digest' = Cq.normal_form q' in
       String.equal digest digest'
       && Graph.equal nf.Cq.graph nf'.Cq.graph
       && Bitset.equal nf.Cq.free nf'.Cq.free
       && Perm.is_permutation perm
       && Cq.num_free nf = Cq.num_free q)

(* ------------------------------------------------------------------ *)
(* Cold vs warm differentials                                          *)
(* ------------------------------------------------------------------ *)

(* run [f] with the tier disabled, then twice warm (miss-and-fill, then
   hit), and hand all three results to [agree] *)
let cold_warm_warm f =
  Cache.set_capacity_mb 0;
  let cold = f () in
  Cache.set_capacity_mb 256;
  Cache.clear ();
  let warm_miss = f () in
  let warm_hit = f () in
  (cold, warm_miss, warm_hit)

let test_differential_count () =
  reset_tier ();
  (* C5 -> G(30, .25) is DP-scale by the cost model, so the total is
     cacheable; the three runs must agree to the byte *)
  let h = Builders.cycle 5 in
  let g = Gen.gnp (Prng.create 11) 30 0.25 in
  let cold, wm, wh = cold_warm_warm (fun () -> Td_count.count h g) in
  Alcotest.(check string) "cold = warm-miss" (Bigint.to_string cold)
    (Bigint.to_string wm);
  Alcotest.(check string) "cold = warm-hit" (Bigint.to_string cold)
    (Bigint.to_string wh)

let test_differential_decomposition () =
  reset_tier ();
  let g = Gen.gnp (Prng.create 12) 13 0.35 in
  let cold, wm, wh =
    cold_warm_warm (fun () -> Exact.optimal_decomposition g)
  in
  List.iter
    (fun (name, d) ->
       Alcotest.(check bool) (name ^ " valid") true
         (Decomposition.is_valid_for d g))
    [ ("cold", cold); ("warm-miss", wm); ("warm-hit", wh) ];
  (* the hit path translates the stored canonical decomposition back
     through the inverse permutation; on the same-labelled graph that
     round-trip must reproduce the miss result byte-identically *)
  Alcotest.(check string) "warm-miss = warm-hit bytes" (marshal wm)
    (marshal wh);
  Alcotest.(check int) "cold width = warm width" (Decomposition.width cold)
    (Decomposition.width wh)

let test_differential_kwl () =
  reset_tier ();
  let g = Gen.gnp (Prng.create 14) 12 0.4 in
  let cold, wm, wh = cold_warm_warm (fun () -> Kwl.run_cached 2 g) in
  (* warm results carry canonical colour ids, the cold (tier-disabled)
     path caller-order ids; the ids are contractually arbitrary — the
     partition is the artifact — so normalise through [renumber] for
     the cold/warm comparison *)
  Alcotest.(check string) "cold = warm-miss partition"
    (marshal (Kwl.renumber cold).Kwl.colours)
    (marshal (Kwl.renumber wm).Kwl.colours);
  Alcotest.(check string) "warm-miss = warm-hit bytes"
    (marshal wm.Kwl.colours) (marshal wh.Kwl.colours);
  Alcotest.(check int) "colour counts agree" cold.Kwl.num_colours
    wh.Kwl.num_colours;
  (* and the verdict store *)
  let g1 = Builders.cycle 6 in
  let g2 = Ops.disjoint_union (Builders.cycle 3) (Builders.cycle 3) in
  let c, m, h = cold_warm_warm (fun () -> Wl_dimension.equivalent_cached 1 g1 g2) in
  Alcotest.(check bool) "verdict cold = warm-miss" c m;
  Alcotest.(check bool) "verdict cold = warm-hit" c h

let test_permuted_resubmission_hits () =
  reset_tier ();
  let g = Gen.gnp (Prng.create 21) 13 0.35 in
  let d = Exact.optimal_decomposition g in
  let hits0 = counter_value "cache.hit" in
  let p = rand_perm (Prng.create 22) (Graph.num_vertices g) in
  let g' = Ops.relabel g p in
  let d' = Exact.optimal_decomposition g' in
  Alcotest.(check bool) "permuted resubmission hit" true
    (counter_value "cache.hit" > hits0);
  Alcotest.(check bool) "translated decomposition valid for the copy" true
    (Decomposition.is_valid_for d' g');
  Alcotest.(check int) "same width" (Decomposition.width d)
    (Decomposition.width d')

(* the qcheck version of the same property, across artifacts *)
let qcheck_permuted_hit =
  QCheck.Test.make ~count:30
    ~name:"permuted-isomorphic resubmission hits the tier" gen_instance
    (fun (seed, n, pseed) ->
       QCheck.assume (n >= 2);
       reset_tier ();
       let g = Gen.gnp (Prng.create (41 + seed)) n 0.35 in
       let d = Exact.optimal_decomposition g in
       let hits0 = counter_value "cache.hit" in
       let p = rand_perm (Prng.create (43 + pseed)) n in
       let g' = Ops.relabel g p in
       let d' = Exact.optimal_decomposition g' in
       counter_value "cache.hit" > hits0
       && Decomposition.is_valid_for d' g'
       && Decomposition.width d' = Decomposition.width d)

(* ------------------------------------------------------------------ *)
(* Eviction under pressure                                             *)
(* ------------------------------------------------------------------ *)

let blob_store =
  Cache.store ~name:"test.blob"
    ~words:(fun s -> 2 + (String.length s / 8))
    ()

let test_eviction_soundness () =
  reset_tier ();
  (* room for only a handful of ~130-word entries *)
  Cache.set_capacity_words 1_000;
  let evict0 = counter_value "cache.eviction" in
  let keyed i = (Printf.sprintf "blob-%04d" i, String.make 1024 'x') in
  for i = 0 to 63 do
    let k, v = keyed i in
    Cache.add blob_store k v
  done;
  let st = Cache.stats () in
  Alcotest.(check bool) "evictions happened" true
    (counter_value "cache.eviction" > evict0);
  Alcotest.(check bool) "within capacity" true (st.Cache.words <= 1_000);
  Alcotest.(check bool) "some entries survive" true (st.Cache.entries > 0);
  (* LRU: the most recent entry survives, the oldest is gone *)
  let k_new, v_new = keyed 63 in
  let k_old, _ = keyed 0 in
  Alcotest.(check (option string)) "MRU entry present" (Some v_new)
    (Cache.find blob_store k_new);
  Alcotest.(check (option string)) "LRU entry evicted" None
    (Cache.find blob_store k_old);
  Cache.set_capacity_mb 256

let test_accounting_balances () =
  reset_tier ();
  let bytes0 = counter_value "cache.bytes" in
  for i = 0 to 15 do
    Cache.add blob_store (Printf.sprintf "bal-%d" i) (String.make 256 'y')
  done;
  let st = Cache.stats () in
  Alcotest.(check bool) "bytes gauge grew" true
    (counter_value "cache.bytes" > bytes0);
  Alcotest.(check bool) "stats words positive" true (st.Cache.words > 0);
  Cache.clear ();
  let st = Cache.stats () in
  Alcotest.(check int) "clear empties entries" 0 st.Cache.entries;
  Alcotest.(check int) "clear empties words" 0 st.Cache.words;
  (* every add was balanced by a drop: the signed byte gauge returns to
     its pre-test value *)
  Alcotest.(check int) "bytes gauge balances" bytes0
    (counter_value "cache.bytes")

let test_oversized_entry_rejected () =
  reset_tier ();
  Cache.set_capacity_words 100;
  Cache.add blob_store "oversize" (String.make 8192 'z');
  Alcotest.(check (option string)) "an entry larger than the tier is dropped"
    None
    (Cache.find blob_store "oversize");
  Cache.set_capacity_mb 256

let test_disabled_tier_is_inert () =
  reset_tier ();
  Cache.set_capacity_mb 0;
  Alcotest.(check bool) "disabled" false (Cache.enabled ());
  Cache.add blob_store "inert" "v";
  Alcotest.(check (option string)) "no store when disabled" None
    (Cache.find blob_store "inert");
  Cache.set_capacity_mb 256

(* ------------------------------------------------------------------ *)
(* Budgeted runs and the tier                                          *)
(* ------------------------------------------------------------------ *)

module Budget = Wlcq_robust.Budget

(* A budgeted run may read the tier (a memoised total is exact
   whatever budget produced it): warm the cache with an unlimited run,
   then a deadline-bound rerun must hit and agree to the byte. *)
let test_budgeted_run_reads_warm_cache () =
  reset_tier ();
  let h = Builders.cycle 5 in
  let g = Gen.gnp (Prng.create 11) 30 0.25 in
  let warm = Td_count.count h g in
  let hits0 = counter_value "td_count.cache_hits" in
  let budget = Budget.create ~deadline_ms:60_000.0 () in
  (match Td_count.count_budgeted ~budget h g with
   | `Exact v ->
     Alcotest.(check string) "budgeted warm total agrees"
       (Bigint.to_string warm) (Bigint.to_string v)
   | `Degraded _ | `Exhausted _ ->
     Alcotest.fail "generously budgeted warm rerun was not exact");
  Alcotest.(check bool) "budgeted rerun hit the tier" true
    (counter_value "td_count.cache_hits" > hits0);
  (* and cold-vs-warm under the same budget still agrees *)
  Cache.set_capacity_mb 0;
  let budget' = Budget.create ~deadline_ms:60_000.0 () in
  (match Td_count.count_budgeted ~budget:budget' h g with
   | `Exact v ->
     Alcotest.(check string) "budgeted cold total agrees"
       (Bigint.to_string warm) (Bigint.to_string v)
   | `Degraded _ | `Exhausted _ ->
     Alcotest.fail "generously budgeted cold rerun was not exact");
  Cache.set_capacity_mb 256

(* The write gate stays exact-only: a degraded decomposition (forced
   here by an already-cancelled budget) must never enter the tier, so
   the next unlimited run misses and recomputes. *)
let test_degraded_never_written () =
  reset_tier ();
  (* big enough that branch-and-bound crosses a poll point: the
     cancelled token must trip it into the heuristic-order fallback *)
  let g = Gen.gnp (Prng.create 12) 26 0.3 in
  let tk = Budget.token () in
  Budget.cancel tk;
  let budget = Budget.create ~cancel:tk () in
  (match Exact.optimal_decomposition_budgeted ~budget g with
   | `Degraded (d, _) ->
     Alcotest.(check bool) "degraded decomposition still valid" true
       (Decomposition.is_valid_for d g)
   | `Exact _ -> Alcotest.fail "cancelled budget produced an exact run"
   | `Exhausted _ -> Alcotest.fail "treewidth_budgeted never exhausts");
  let misses0 = counter_value "tw.decomp_memo_misses" in
  ignore (Exact.optimal_decomposition g : Decomposition.t);
  Alcotest.(check bool) "unlimited rerun misses (nothing was written)" true
    (counter_value "tw.decomp_memo_misses" > misses0)

(* ------------------------------------------------------------------ *)
(* Warm-start snapshots                                                *)
(* ------------------------------------------------------------------ *)

let test_save_load_roundtrip () =
  reset_tier ();
  let g = Gen.gnp (Prng.create 33) 13 0.35 in
  let d = Exact.optimal_decomposition g in
  let path = Filename.temp_file "wlcq_cache" ".snap" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Cache.save_file path with
   | Ok n -> Alcotest.(check bool) "saved >= 1 entries" true (n >= 1)
   | Error e -> Alcotest.failf "save_file: %s" e);
  Cache.clear ();
  (match Cache.load_file path with
   | Ok n -> Alcotest.(check bool) "loaded >= 1 entries" true (n >= 1)
   | Error e -> Alcotest.failf "load_file: %s" e);
  let hits0 = counter_value "cache.hit" in
  let d' = Exact.optimal_decomposition g in
  Alcotest.(check bool) "reload hits" true (counter_value "cache.hit" > hits0);
  Alcotest.(check string) "reloaded artifact byte-identical" (marshal d)
    (marshal d')

let test_load_rejects_garbage () =
  reset_tier ();
  let path = Filename.temp_file "wlcq_cache" ".bad" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "definitely not a cache snapshot";
  close_out oc;
  (match Cache.load_file path with
   | Ok _ -> Alcotest.fail "garbage accepted"
   | Error _ -> ());
  match Cache.load_file (path ^ ".does-not-exist") with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wlcq_cache"
    [
      ( "canonical forms",
        QCheck_alcotest.to_alcotest qcheck_canonical_invariance
        :: QCheck_alcotest.to_alcotest qcheck_address_invariance
        :: QCheck_alcotest.to_alcotest qcheck_query_normal_form
        :: [ Alcotest.test_case "distinct graphs get distinct addresses"
               `Quick test_addresses_separate ] );
      ( "differentials",
        [
          Alcotest.test_case "Td_count totals: cold = warm" `Quick
            test_differential_count;
          Alcotest.test_case "decompositions: cold = warm" `Quick
            test_differential_decomposition;
          Alcotest.test_case "k-WL colourings and verdicts: cold = warm"
            `Quick test_differential_kwl;
          Alcotest.test_case "permuted resubmission hits" `Quick
            test_permuted_resubmission_hits;
          QCheck_alcotest.to_alcotest qcheck_permuted_hit;
          Alcotest.test_case "budgeted runs read a warm tier" `Quick
            test_budgeted_run_reads_warm_cache;
          Alcotest.test_case "degraded results are never written" `Quick
            test_degraded_never_written;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "eviction under pressure is sound" `Quick
            test_eviction_soundness;
          Alcotest.test_case "size accounting balances" `Quick
            test_accounting_balances;
          Alcotest.test_case "oversized entries are rejected" `Quick
            test_oversized_entry_rejected;
          Alcotest.test_case "a disabled tier is inert" `Quick
            test_disabled_tier_is_inert;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "corrupt snapshots are clean errors" `Quick
            test_load_rejects_garbage;
        ] );
    ]
