(* The linter linted: every rule must fire on its known-bad fixture,
   pragmas must suppress (and be counted), and pragma misuse must be
   reported.  The fixture tree lives in test/lint_fixtures/ and is
   skipped by ordinary lint runs (the driver prunes [lint_fixtures]
   directories unless asked). *)

open Lint_engine

let result =
  lazy (Engine.run ~include_fixtures:true ~roots:[ "lint_fixtures" ] ())

let findings_in file rule =
  let r = Lazy.force result in
  List.filter
    (fun (d : Diagnostic.t) ->
       String.equal d.file ("lint_fixtures/" ^ file)
       && String.equal (Diagnostic.rule_id d.rule) rule)
    r.Engine.findings

let count_in file rule = List.length (findings_in file rule)

let check_count name file rule expected =
  Alcotest.(check int) name expected (count_in file rule)

let test_r1_fires () =
  (* = Some, <> None, = [1;2;3], bare compare, Hashtbl.hash, and the
     list-keyed Hashtbl.create *)
  check_count "R1 count on bad_poly_eq" "bad_poly_eq.ml" "R1" 6

let test_r2_fires () =
  (* List.hd, Option.get, Array.unsafe_get, bare failwith message,
     bare invalid_arg message *)
  check_count "R2 count on bad_partial" "bad_partial.ml" "R2" 5

let test_r3_fires () =
  (* shared_counter and shared_memo, both visible to Domain.spawn *)
  check_count "R3 count on bad_domain" "bad_domain.ml" "R3" 2

let test_r3_allows_atomic () =
  (* the Atomic / Domain.DLS pattern used by lib/obs must stay clean:
     shared_counter and per_domain_scratch are visible to Domain.spawn
     but are domain-safe by construction *)
  List.iter
    (fun rule ->
       check_count ("good_atomic is clean of " ^ rule) "good_atomic.ml"
         rule 0)
    [ "R1"; "R2"; "R3" ]

let test_r3_allows_parallel_dp () =
  (* the driver-local parallel-DP pattern used by lib/hom's packed
     engine: locally allocated result tables, strided worker writes,
     join before reading — no top-level mutables, so R3 stays silent *)
  List.iter
    (fun rule ->
       check_count ("good_parallel_dp is clean of " ^ rule)
         "good_parallel_dp.ml" rule 0)
    [ "R0"; "R1"; "R2"; "R3" ]

let test_r4_fires () =
  (* missing .mli and print_endline, both lib-only checks *)
  check_count "R4 count on lib/bad_print" "lib/bad_print.ml" "R4" 2

let message_of file rule part =
  match findings_in file rule with
  | [] -> Alcotest.failf "no %s finding in %s" rule file
  | ds ->
    Alcotest.(check bool)
      (Printf.sprintf "a %s message in %s mentions %S" rule file part)
      true
      (List.exists
         (fun (d : Diagnostic.t) ->
            (* substring scan; Diagnostic messages are single-line *)
            let n = String.length part in
            let m = String.length d.message in
            let rec at i = i + n <= m
                           && (String.equal (String.sub d.message i n) part
                               || at (i + 1)) in
            at 0)
         ds)

let test_r7_same_file () =
  (* helper_spin's nested loop and the spin_a/spin_b cycle, both below
     sum_budgeted; the polled, pragma-suppressed and flat-init
     functions stay clean *)
  check_count "R7 count on lib/bad_budget_reach" "lib/bad_budget_reach.ml"
    "R7" 2;
  message_of "lib/bad_budget_reach.ml" "R7" "helper_spin";
  message_of "lib/bad_budget_reach.ml" "R7" "spin_a";
  message_of "lib/bad_budget_reach.ml" "R7" "sum_budgeted"

let test_r7_cross_module () =
  (* the unpolled loop lives in xmod_spin.ml, one call away from the
     entry in xmod_entry.ml: the finding lands on the loop and names
     the entry across the module boundary *)
  check_count "R7 count on lib/xmod_spin" "lib/xmod_spin.ml" "R7" 1;
  message_of "lib/xmod_spin.ml" "R7" "run_budgeted"

let test_r7_unbudgeted_call () =
  (* drain_budgeted's loop calls a polling callee WITHOUT ~budget, so
     the callee's polls are pinned to its defaulted budget and cannot
     make the caller's loop killable; threaded_budgeted passes ~budget
     and stays clean.  This pins the Td_count/Brute.iter shape the
     rule originally surfaced in lib/. *)
  check_count "R7 count on lib/xmod_entry" "lib/xmod_entry.ml" "R7" 1;
  message_of "lib/xmod_entry.ml" "R7" "drain_budgeted"

let test_r5_retired () =
  (* R5's syntactic check is subsumed by R7's reachability analysis;
     the id no longer parses, but pragmas naming it are pointed at the
     successor *)
  Alcotest.(check bool) "R5 is not a live rule id" true
    (Option.is_none (Diagnostic.rule_of_id "R5"));
  Alcotest.(check (option string)) "R5 retired in favour of R7"
    (Some "R7")
    (Diagnostic.retired_successor "R5");
  check_count "stale R5 pragma is R0" "pragma_retired.ml" "R0" 1;
  message_of "pragma_retired.ml" "R0" "R7"

let test_r8_fires () =
  (* Failure (one call deep) and Not_found (two calls deep) both leak
     from lookup_budgeted, with the witness chain in the message; the
     match-exception and Budget.Exhausted-mapping entries stay clean *)
  check_count "R8 count on lib/bad_outcome_escape" "lib/bad_outcome_escape.ml"
    "R8" 2;
  message_of "lib/bad_outcome_escape.ml" "R8" "Failure";
  message_of "lib/bad_outcome_escape.ml" "R8" "Not_found";
  message_of "lib/bad_outcome_escape.ml" "R8" "deep_find"

let test_r8_cross_module () =
  (* Budget.Exhausted raised by the callee's tick_check in
     xmod_spin.ml escapes both entries in xmod_entry.ml; the witness
     chain crosses the module boundary *)
  check_count "R8 count on lib/xmod_entry" "lib/xmod_entry.ml" "R8" 2;
  message_of "lib/xmod_entry.ml" "R8" "Budget.Exhausted";
  message_of "lib/xmod_entry.ml" "R8" "xmod_spin.ml"

let test_r9_fires () =
  (* the per-iteration tuple and closure; the hoisted-closure and
     pragma-suppressed variants stay clean *)
  check_count "R9 count on lib/hom/bad_hot_alloc" "lib/hom/bad_hot_alloc.ml"
    "R9" 2

let test_r10_fires () =
  (* the plain Hashtbl.create and the *_tbl functor table, both at top
     level; the pragma-suppressed table, the function-local table and
     the ref cell stay clean *)
  check_count "R10 count on lib/bad_memo_table" "lib/bad_memo_table.ml"
    "R10" 2;
  message_of "lib/bad_memo_table.ml" "R10" "memo";
  message_of "lib/bad_memo_table.ml" "R10" "graph_memo";
  message_of "lib/bad_memo_table.ml" "R10" "Wlcq_cache.Cache.store"

let test_r10_exempts_cache_tier () =
  (* the same shapes under a lib/cache path component are the tier's
     own state and stay clean *)
  check_count "R10 silent in lib/cache" "lib/cache/good_tier_table.ml"
    "R10" 0

let test_r11_fires_outside_io () =
  (* Unix.read, Unix.select, Unix.accept and the aliased
     U.write_substring, all in a lib/serve file that is not io.ml;
     getpid and set_nonblock stay clean *)
  check_count "R11 count on lib/serve/bad_unix_direct"
    "lib/serve/bad_unix_direct.ml" "R11" 4;
  message_of "lib/serve/bad_unix_direct.ml" "R11" "Io wrapper"

let test_r11_io_needs_timeout () =
  (* in the designated io.ml, only read_forever (no ~timeout_s
     parameter) is a finding; the bounded wrapper and the nested
     helper that closes over its wrapper's bound stay clean *)
  check_count "R11 count on lib/serve/io" "lib/serve/io.ml" "R11" 1;
  message_of "lib/serve/io.ml" "R11" "read_forever"

let test_r10_suppression_counted () =
  let r = Lazy.force result in
  List.iter
    (fun (rc : Engine.rule_count) ->
       if String.equal (Diagnostic.rule_id rc.rule) "R10" then
         Alcotest.(check bool) "R10 suppression counted" true
           (rc.suppressions >= 1))
    r.Engine.by_rule

let test_r6_fires () =
  (* the literal and shifted-literal cutoffs; the small-constant,
     non-constant-bound, equality and pragma-suppressed comparisons
     stay clean *)
  check_count "R6 count on lib/hom/bad_threshold" "lib/hom/bad_threshold.ml"
    "R6" 2

let test_pragmas_suppress () =
  let r = Lazy.force result in
  List.iter
    (fun rule -> check_count ("suppressed is clean of " ^ rule)
        "suppressed.ml" rule 0)
    [ "R0"; "R1"; "R2"; "R3"; "R4" ];
  (* each suppression must be counted towards --stats *)
  List.iter
    (fun (rc : Engine.rule_count) ->
       match Diagnostic.rule_id rc.rule with
       | "R1" | "R2" | "R3" | "R6" | "R7" | "R9" ->
         Alcotest.(check bool)
           (Diagnostic.rule_id rc.rule ^ " suppression counted") true
           (rc.suppressions >= 1)
       | _ -> ())
    r.Engine.by_rule

let test_unused_pragma_reported () =
  check_count "unused pragma is R0" "unused_pragma.ml" "R0" 1

let test_malformed_pragmas_reported () =
  (* missing rule+reason, unknown rule id, missing reason *)
  check_count "malformed pragmas are R0" "malformed_pragma.ml" "R0" 3

let test_pragma_at_eof () =
  (* a pragma on the final line of a file with no trailing newline
     still parses (and, covering nothing, is reported unused) *)
  check_count "EOF pragma is parsed and unused" "pragma_eof.ml" "R0" 1

let test_pragma_crlf () =
  (* CRLF line endings: the \r must not be folded into the reason or
     break pragma parsing *)
  check_count "CRLF pragma is parsed and unused" "pragma_crlf.ml" "R0" 1

let test_run_reports_failure () =
  let r = Lazy.force result in
  Alcotest.(check bool) "fixture tree has live findings" true
    (not (List.is_empty r.Engine.findings));
  Alcotest.(check bool) "suppressions totalled" true
    (r.Engine.total_suppressions >= 3)

let test_default_run_skips_fixtures () =
  (* without [include_fixtures], the lint_fixtures tree is pruned *)
  let r = Engine.run ~roots:[ "lint_fixtures" ] () in
  Alcotest.(check int) "no files scanned" 0 r.Engine.files_scanned

let test_json_output_strictly_parseable () =
  (* the --json report must satisfy the shared strict JSON acceptor
     (lib/strictjson) the Obs exporters are held to — findings carry
     arbitrary message text, so escaping bugs would surface here *)
  let json = Engine.to_json (Lazy.force result) in
  Alcotest.(check bool) "lint --json passes the strict acceptor" true
    (Wlcq_strictjson.Strict_json.parseable json)

let test_census_parse_and_drift () =
  let census =
    Engine.parse_census
      "| rule | suppressions | what |\n\
       |------|--------------|------|\n\
       | R2   | 10           | excused |\n\
       | R9   | 39           | excused |\n\
       prose mentioning R7 outside a table is ignored\n"
  in
  Alcotest.(check int) "two census rows parsed" 2 (List.length census);
  let r = Lazy.force result in
  (* the fixture tree's suppression counts differ from the recorded
     10/39, so both rows must be reported as drifted... *)
  let drift = Engine.census_drift ~census r in
  Alcotest.(check bool) "wrong counts are reported as drift" true
    (List.exists (fun (rule, recorded, _) ->
         String.equal (Diagnostic.rule_id rule) "R2" && recorded = 10)
        drift);
  (* ...and a census recording the actual counts has none *)
  let exact =
    List.filter_map
      (fun (rc : Engine.rule_count) ->
         if rc.suppressions > 0 then Some (rc.rule, rc.suppressions)
         else None)
      r.Engine.by_rule
  in
  Alcotest.(check int) "exact census has no drift" 0
    (List.length (Engine.census_drift ~census:exact r))

let () =
  Alcotest.run "wlcq_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 polymorphic comparison" `Quick test_r1_fires;
          Alcotest.test_case "R2 partial functions" `Quick test_r2_fires;
          Alcotest.test_case "R3 domain safety" `Quick test_r3_fires;
          Alcotest.test_case "R3 allows Atomic/DLS registry pattern" `Quick
            test_r3_allows_atomic;
          Alcotest.test_case "R3 allows driver-local parallel DP" `Quick
            test_r3_allows_parallel_dp;
          Alcotest.test_case "R4 hygiene" `Quick test_r4_fires;
          Alcotest.test_case "R6 hard-coded engine thresholds" `Quick
            test_r6_fires;
          Alcotest.test_case "R7 budget-poll reachability, same file" `Quick
            test_r7_same_file;
          Alcotest.test_case "R7 finds the loop across modules" `Quick
            test_r7_cross_module;
          Alcotest.test_case "R7 flags the unbudgeted polling call" `Quick
            test_r7_unbudgeted_call;
          Alcotest.test_case "R5 retired into R7" `Quick test_r5_retired;
          Alcotest.test_case "R8 exception containment" `Quick test_r8_fires;
          Alcotest.test_case "R8 witness chain crosses modules" `Quick
            test_r8_cross_module;
          Alcotest.test_case "R9 hot-loop allocation" `Quick test_r9_fires;
          Alcotest.test_case "R10 module-level memo table" `Quick
            test_r10_fires;
          Alcotest.test_case "R10 exempts the cache tier" `Quick
            test_r10_exempts_cache_tier;
          Alcotest.test_case "R10 suppression counted" `Quick
            test_r10_suppression_counted;
          Alcotest.test_case "R11 blocking Unix outside io.ml" `Quick
            test_r11_fires_outside_io;
          Alcotest.test_case "R11 io.ml wrappers need a timeout bound"
            `Quick test_r11_io_needs_timeout;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "reasoned pragmas suppress" `Quick
            test_pragmas_suppress;
          Alcotest.test_case "unused pragma reported" `Quick
            test_unused_pragma_reported;
          Alcotest.test_case "malformed pragma reported" `Quick
            test_malformed_pragmas_reported;
          Alcotest.test_case "pragma at EOF without newline" `Quick
            test_pragma_at_eof;
          Alcotest.test_case "pragma under CRLF endings" `Quick
            test_pragma_crlf;
        ] );
      ( "driver",
        [
          Alcotest.test_case "findings aggregate" `Quick
            test_run_reports_failure;
          Alcotest.test_case "fixtures pruned by default" `Quick
            test_default_run_skips_fixtures;
          Alcotest.test_case "--json output is strictly parseable" `Quick
            test_json_output_strictly_parseable;
          Alcotest.test_case "suppression census parses and drifts" `Quick
            test_census_parse_and_drift;
        ] );
    ]
