(* The linter linted: every rule must fire on its known-bad fixture,
   pragmas must suppress (and be counted), and pragma misuse must be
   reported.  The fixture tree lives in test/lint_fixtures/ and is
   skipped by ordinary lint runs (the driver prunes [lint_fixtures]
   directories unless asked). *)

open Lint_engine

let result =
  lazy (Engine.run ~include_fixtures:true ~roots:[ "lint_fixtures" ] ())

let findings_in file rule =
  let r = Lazy.force result in
  List.filter
    (fun (d : Diagnostic.t) ->
       String.equal d.file ("lint_fixtures/" ^ file)
       && String.equal (Diagnostic.rule_id d.rule) rule)
    r.Engine.findings

let count_in file rule = List.length (findings_in file rule)

let check_count name file rule expected =
  Alcotest.(check int) name expected (count_in file rule)

let test_r1_fires () =
  (* = Some, <> None, = [1;2;3], bare compare, Hashtbl.hash, and the
     list-keyed Hashtbl.create *)
  check_count "R1 count on bad_poly_eq" "bad_poly_eq.ml" "R1" 6

let test_r2_fires () =
  (* List.hd, Option.get, Array.unsafe_get, bare failwith message,
     bare invalid_arg message *)
  check_count "R2 count on bad_partial" "bad_partial.ml" "R2" 5

let test_r3_fires () =
  (* shared_counter and shared_memo, both visible to Domain.spawn *)
  check_count "R3 count on bad_domain" "bad_domain.ml" "R3" 2

let test_r3_allows_atomic () =
  (* the Atomic / Domain.DLS pattern used by lib/obs must stay clean:
     shared_counter and per_domain_scratch are visible to Domain.spawn
     but are domain-safe by construction *)
  List.iter
    (fun rule ->
       check_count ("good_atomic is clean of " ^ rule) "good_atomic.ml"
         rule 0)
    [ "R1"; "R2"; "R3" ]

let test_r3_allows_parallel_dp () =
  (* the driver-local parallel-DP pattern used by lib/hom's packed
     engine: locally allocated result tables, strided worker writes,
     join before reading — no top-level mutables, so R3 stays silent *)
  List.iter
    (fun rule ->
       check_count ("good_parallel_dp is clean of " ^ rule)
         "good_parallel_dp.ml" rule 0)
    [ "R0"; "R1"; "R2"; "R3" ]

let test_r4_fires () =
  (* missing .mli and print_endline, both lib-only checks *)
  check_count "R4 count on lib/bad_print" "lib/bad_print.ml" "R4" 2

let test_r5_fires () =
  (* the for-loop and while-loop calls without ~budget; the threaded,
     outside-loop and pragma-suppressed calls stay clean *)
  check_count "R5 count on lib/bad_loop_budget" "lib/bad_loop_budget.ml" "R5"
    2

let test_r6_fires () =
  (* the literal and shifted-literal cutoffs; the small-constant,
     non-constant-bound, equality and pragma-suppressed comparisons
     stay clean *)
  check_count "R6 count on lib/hom/bad_threshold" "lib/hom/bad_threshold.ml"
    "R6" 2

let test_pragmas_suppress () =
  let r = Lazy.force result in
  List.iter
    (fun rule -> check_count ("suppressed is clean of " ^ rule)
        "suppressed.ml" rule 0)
    [ "R0"; "R1"; "R2"; "R3"; "R4" ];
  (* each suppression must be counted towards --stats *)
  List.iter
    (fun (rc : Engine.rule_count) ->
       match Diagnostic.rule_id rc.rule with
       | "R1" | "R2" | "R3" | "R5" | "R6" ->
         Alcotest.(check bool)
           (Diagnostic.rule_id rc.rule ^ " suppression counted") true
           (rc.suppressions >= 1)
       | _ -> ())
    r.Engine.by_rule

let test_unused_pragma_reported () =
  check_count "unused pragma is R0" "unused_pragma.ml" "R0" 1

let test_malformed_pragmas_reported () =
  (* missing rule+reason, unknown rule id, missing reason *)
  check_count "malformed pragmas are R0" "malformed_pragma.ml" "R0" 3

let test_run_reports_failure () =
  let r = Lazy.force result in
  Alcotest.(check bool) "fixture tree has live findings" true
    (not (List.is_empty r.Engine.findings));
  Alcotest.(check bool) "suppressions totalled" true
    (r.Engine.total_suppressions >= 3)

let test_default_run_skips_fixtures () =
  (* without [include_fixtures], the lint_fixtures tree is pruned *)
  let r = Engine.run ~roots:[ "lint_fixtures" ] () in
  Alcotest.(check int) "no files scanned" 0 r.Engine.files_scanned

let () =
  Alcotest.run "wlcq_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 polymorphic comparison" `Quick test_r1_fires;
          Alcotest.test_case "R2 partial functions" `Quick test_r2_fires;
          Alcotest.test_case "R3 domain safety" `Quick test_r3_fires;
          Alcotest.test_case "R3 allows Atomic/DLS registry pattern" `Quick
            test_r3_allows_atomic;
          Alcotest.test_case "R3 allows driver-local parallel DP" `Quick
            test_r3_allows_parallel_dp;
          Alcotest.test_case "R4 hygiene" `Quick test_r4_fires;
          Alcotest.test_case "R5 budget threading in loops" `Quick
            test_r5_fires;
          Alcotest.test_case "R6 hard-coded engine thresholds" `Quick
            test_r6_fires;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "reasoned pragmas suppress" `Quick
            test_pragmas_suppress;
          Alcotest.test_case "unused pragma reported" `Quick
            test_unused_pragma_reported;
          Alcotest.test_case "malformed pragma reported" `Quick
            test_malformed_pragmas_reported;
        ] );
      ( "driver",
        [
          Alcotest.test_case "findings aggregate" `Quick
            test_run_reports_failure;
          Alcotest.test_case "fixtures pruned by default" `Quick
            test_default_run_skips_fixtures;
        ] );
    ]
