open Wlcq_graph
open Wlcq_wl
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Refinement (1-WL)                                                   *)
(* ------------------------------------------------------------------ *)

let test_refinement_classics () =
  (* the canonical 1-WL-equivalent non-isomorphic pair *)
  check_bool "2K3 ~1 C6" true
    (Refinement.equivalent (Builders.two_triangles ()) (Builders.cycle 6));
  (* regular graphs of the same degree and size are 1-WL-equivalent *)
  check_bool "C5 ~1 C5" true
    (Refinement.equivalent (Builders.cycle 5) (Builders.cycle 5));
  check_bool "P4 !~1 K1,3" false
    (Refinement.equivalent (Builders.path 4) (Builders.star 3));
  check_bool "different sizes" false
    (Refinement.equivalent (Builders.cycle 5) (Builders.cycle 6))

let test_refinement_stable_counts () =
  (* path P5: colours = distance-to-end patterns; stable partition has
     3 classes: ends, next-to-ends, middle *)
  let r = Refinement.run (Builders.path 5) in
  check_int "P5 stable colours" 3 r.Refinement.num_colours;
  (* vertex-transitive graphs stay monochromatic *)
  let r = Refinement.run (Builders.cycle 8) in
  check_int "C8 stays monochromatic" 1 r.Refinement.num_colours;
  let r = Refinement.run (Builders.petersen ()) in
  check_int "petersen monochromatic" 1 r.Refinement.num_colours

let test_refinement_isomorphic_graphs_equivalent () =
  let rng = Prng.create 11 in
  for _ = 1 to 10 do
    let g = Gen.gnp rng 8 0.4 in
    let p = Array.init 8 (fun i -> i) in
    Prng.shuffle rng p;
    check_bool "isomorphic implies 1-WL-equivalent" true
      (Refinement.equivalent g (Ops.relabel g p))
  done

(* ------------------------------------------------------------------ *)
(* k-WL                                                                *)
(* ------------------------------------------------------------------ *)

let test_kwl_distinguishes_2k3_c6 () =
  (* 2-WL sees triangle counts (tw(K3) = 2) *)
  check_bool "2K3 !~2 C6" false
    (Kwl.equivalent 2 (Builders.two_triangles ()) (Builders.cycle 6))

let test_kwl_on_isomorphic () =
  let rng = Prng.create 12 in
  for _ = 1 to 5 do
    let g = Gen.gnp rng 6 0.5 in
    let p = Array.init 6 (fun i -> i) in
    Prng.shuffle rng p;
    check_bool "isomorphic implies 2-WL-equivalent" true
      (Kwl.equivalent 2 g (Ops.relabel g p));
    check_bool "isomorphic implies 3-WL-equivalent" true
      (Kwl.equivalent 3 g (Ops.relabel g p))
  done

let test_kwl_rejects_k1 () =
  Alcotest.check_raises "k=1 rejected"
    (Invalid_argument "Kwl.run_many: requires k >= 2 (use Refinement for k = 1)")
    (fun () -> ignore (Kwl.run 1 (Builders.path 2)))

let test_kwl_overflow_guard () =
  (* 3000^5 > Sys.max_array_length: the guard must fire instead of the
     tuple count silently wrapping *)
  let g = Graph.empty 3000 in
  check_bool "overflow guard fires" true
    (try
       ignore (Kwl.run 5 g);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Differential check: optimised engine vs the reference engine        *)
(* ------------------------------------------------------------------ *)

(* The engines agree on partitions, not on concrete colour ids:
   canonicalise both colourings by first occurrence over the
   concatenation and compare. *)
let same_partition (css1 : int array list) (css2 : int array list) =
  let canon css =
    let ids = Hashtbl.create 64 in
    List.map
      (Array.map (fun c ->
           match Hashtbl.find_opt ids c with
           | Some i -> i
           | None ->
             let i = Hashtbl.length ids in
             Hashtbl.add ids c i;
             i))
      css
  in
  canon css1 = canon css2

let engines_agree k graphs =
  let rs = Kwl.run_many k graphs in
  let refs = Kwl.run_many_reference k graphs in
  same_partition
    (List.map (fun r -> r.Kwl.colours) rs)
    (List.map (fun r -> r.Kwl.colours) refs)
  && List.for_all2
       (fun r r' ->
          r.Kwl.num_colours = r'.Kwl.num_colours
          && r.Kwl.rounds = r'.Kwl.rounds)
       rs refs

let test_kwl_engine_vs_reference_cfi () =
  List.iter
    (fun (name, base, k) ->
       let even, odd = Wlcq_cfi.Pairs.twisted_pair base in
       let ge = even.Wlcq_cfi.Cfi.graph and go = odd.Wlcq_cfi.Cfi.graph in
       check_bool (name ^ " joint partition matches") true
         (engines_agree k [ ge; go ]);
       check_bool (name ^ " verdict matches") true
         (Kwl.equivalent k ge go = Kwl.equivalent_reference k ge go))
    [ ("chi(C4) k=2", Builders.cycle 4, 2);
      ("chi(C4) k=3", Builders.cycle 4, 3);
      ("chi(path3) k=2", Builders.path 3, 2) ]

let kwl_engine_qcheck =
  [
    QCheck.Test.make
      ~name:"optimised 2-WL engine matches the reference on random graphs"
      ~count:40
      QCheck.(triple (int_range 1 7) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = Gen.gnp (Prng.create s2) n 0.5 in
         engines_agree 2 [ g1; g2 ]
         && Kwl.equivalent 2 g1 g2 = Kwl.equivalent_reference 2 g1 g2);
    QCheck.Test.make
      ~name:"optimised 3-WL engine matches the reference on tiny graphs"
      ~count:12
      QCheck.(triple (int_range 1 4) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = Gen.gnp (Prng.create s2) n 0.5 in
         engines_agree 3 [ g1; g2 ]
         && Kwl.equivalent 3 g1 g2 = Kwl.equivalent_reference 3 g1 g2);
    QCheck.Test.make
      ~name:"single-graph runs agree between engines (k = 2)" ~count:30
      QCheck.(pair (int_range 1 8) (int_bound 100000))
      (fun (n, seed) ->
         let g = Gen.gnp (Prng.create seed) n 0.4 in
         engines_agree 2 [ g ]);
    QCheck.Test.make
      ~name:"forced-parallel run is byte-identical to forced-sequential"
      ~count:25
      QCheck.(triple (int_range 1 6) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = Gen.gnp (Prng.create s2) n 0.5 in
         let saved = !Kwl.parallel_threshold in
         Fun.protect
           ~finally:(fun () -> Kwl.parallel_threshold := saved)
           (fun () ->
              Kwl.parallel_threshold := max_int;
              let q1, q2 = Kwl.run_pair ~domains:4 2 g1 g2 in
              Kwl.parallel_threshold := 0;
              let p1, p2 = Kwl.run_pair ~domains:4 2 g1 g2 in
              let arr_eq = Wlcq_util.Ordering.equal_array Int.equal in
              q1.Kwl.num_colours = p1.Kwl.num_colours
              && q1.Kwl.rounds = p1.Kwl.rounds
              && arr_eq q1.Kwl.colours p1.Kwl.colours
              && arr_eq q2.Kwl.colours p2.Kwl.colours));
  ]

let test_kwl_monotone () =
  (* pairs distinguished at k=1 stay distinguished at k=2 *)
  let g1 = Builders.path 4 and g2 = Builders.star 3 in
  check_bool "1-WL distinguishes" false (Equivalence.equivalent 1 g1 g2);
  check_bool "2-WL distinguishes too" false (Equivalence.equivalent 2 g1 g2)

(* ------------------------------------------------------------------ *)
(* Equivalence oracle vs hom-indistinguishability (Definition 19)      *)
(* ------------------------------------------------------------------ *)

let test_hom_oracle_crosscheck_classics () =
  (* 2K3 vs C6 agree on all patterns of treewidth <= 1, and are
     separated by a treewidth-2 pattern (the triangle) *)
  let g1 = Builders.two_triangles () and g2 = Builders.cycle 6 in
  check_bool "no tw-1 pattern distinguishes" true
    (Option.is_none
       (Equivalence.hom_indistinguishable ~tw_bound:1 ~max_pattern_size:5 g1
          g2));
  (match
     Equivalence.hom_indistinguishable ~tw_bound:2 ~max_pattern_size:4 g1 g2
   with
   | None -> Alcotest.fail "expected a distinguishing treewidth-2 pattern"
   | Some pattern ->
     check_bool "witness has treewidth 2" true
       (Wlcq_treewidth.Exact.treewidth pattern = 2))

let equivalence_qcheck =
  [
    QCheck.Test.make
      ~name:"1-WL agrees with tree-hom indistinguishability (small)"
      ~count:25
      QCheck.(pair (int_range 2 6) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g1 = Gen.gnp rng n 0.5 in
         let g2 = Gen.gnp rng n 0.5 in
         let wl = Equivalence.equivalent 1 g1 g2 in
         let hom =
           Option.is_none
             (Equivalence.hom_indistinguishable ~tw_bound:1
                ~max_pattern_size:4 g1 g2)
         in
         (* hom-oracle is truncated at pattern size 4, so it may fail to
            separate graphs that 1-WL separates with a larger tree; the
            implication tested is the sound direction *)
         (not wl) || hom);
    QCheck.Test.make
      ~name:"2-WL equivalence implies equal hom counts from tw<=2 patterns"
      ~count:15
      QCheck.(pair (int_range 2 5) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g1 = Gen.gnp rng n 0.5 in
         let g2 = Gen.gnp rng n 0.5 in
         let wl = Equivalence.equivalent 2 g1 g2 in
         (not wl)
         || Option.is_none
              (Equivalence.hom_indistinguishable ~tw_bound:2
                 ~max_pattern_size:4 g1 g2));
    QCheck.Test.make
      ~name:"hom-distinguished (tw<=1, size<=4) implies 1-WL-distinguished"
      ~count:25
      QCheck.(pair (int_range 2 6) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g1 = Gen.gnp rng n 0.4 in
         let g2 = Gen.gnp rng n 0.6 in
         let hom_dist =
           Option.is_some
             (Equivalence.hom_indistinguishable ~tw_bound:1
                ~max_pattern_size:4 g1 g2)
         in
         (not hom_dist) || not (Equivalence.equivalent 1 g1 g2));
  ]

let test_srg_pair_2wl_equivalent () =
  (* Shrikhande vs 4x4 rook: same SRG parameters, non-isomorphic,
     2-WL-equivalent — the canonical hard instance *)
  let r = Builders.rook () and s = Builders.shrikhande () in
  check_bool "not isomorphic" false (Iso.isomorphic r s);
  check_bool "1-WL-equivalent" true (Equivalence.equivalent 1 r s);
  check_bool "2-WL-equivalent" true (Equivalence.equivalent 2 r s)

let test_srg_pair_3wl_separated () =
  let r = Builders.rook () and s = Builders.shrikhande () in
  check_bool "3-WL separates" false (Equivalence.equivalent 3 r s)

(* ------------------------------------------------------------------ *)
(* Fractional isomorphism (characterisation I)                         *)
(* ------------------------------------------------------------------ *)

let test_fractional_classics () =
  check_bool "2K3 fractionally isomorphic to C6" true
    (Fractional.isomorphic (Builders.two_triangles ()) (Builders.cycle 6));
  check_bool "P4 not fractional K1,3" false
    (Fractional.isomorphic (Builders.path 4) (Builders.star 3));
  check_bool "regular same degree+size" true
    (Fractional.isomorphic (Builders.cycle 8)
       (Ops.disjoint_union (Builders.cycle 4) (Builders.cycle 4)))

let test_equitable_partition () =
  (* star: centre and leaves *)
  let classes, c = Fractional.coarsest_equitable (Builders.star 4) in
  check_int "star classes" 2 c;
  let m = Fractional.degree_matrix (Builders.star 4) classes c in
  (* one class sees 4 of the other and 0 of itself; the other sees 1 *)
  let rows =
    List.sort Wlcq_util.Ordering.int_list
      [ Array.to_list m.(0); Array.to_list m.(1) ]
  in
  let rows_eq = List.equal (List.equal Int.equal) in
  check_bool "degree matrix" true
    (rows_eq rows [ [ 0; 1 ]; [ 4; 0 ] ] || rows_eq rows [ [ 0; 4 ]; [ 1; 0 ] ]);
  (* vertex-transitive graphs have one class *)
  let _, c = Fractional.coarsest_equitable (Builders.petersen ()) in
  check_int "petersen equitable classes" 1 c

let test_degree_matrix_rejects_inequitable () =
  (* splitting P4 into {0,1} and {2,3} is not equitable: vertex 0 has
     no neighbour in class 1 but vertex 1 has one *)
  let g = Builders.path 4 in
  let classes = [| 0; 0; 1; 1 |] in
  check_bool "inequitable rejected" true
    (try
       ignore (Fractional.degree_matrix g classes 2);
       false
     with Invalid_argument _ -> true)

let fractional_qcheck =
  [
    QCheck.Test.make
      ~name:"fractional isomorphism coincides with 1-WL-equivalence"
      ~count:60
      QCheck.(triple (int_range 2 8) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = Gen.gnp (Prng.create s2) n 0.5 in
         Fractional.isomorphic g1 g2 = Refinement.equivalent g1 g2);
    QCheck.Test.make ~name:"coarsest equitable partition is equitable"
      ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let g = Gen.gnp (Prng.create seed) n 0.4 in
         let classes, c = Fractional.coarsest_equitable g in
         match Fractional.degree_matrix g classes c with
         | _ -> true
         | exception Invalid_argument _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Pebble game                                                         *)
(* ------------------------------------------------------------------ *)

let test_pebble_classics () =
  check_bool "game separates 2K3/C6 at k=2" false
    (Pebble.equivalent 2 (Builders.two_triangles ()) (Builders.cycle 6));
  check_bool "game on identical graphs" true
    (Pebble.equivalent 2 (Builders.cycle 5) (Builders.cycle 5));
  check_bool "different sizes" false
    (Pebble.equivalent 2 (Builders.cycle 5) (Builders.cycle 6));
  (* the chi(C4) twisted pair is 1-WL-equivalent but not 2-WL *)
  let even, odd = Wlcq_cfi.Pairs.twisted_pair (Builders.cycle 4) in
  check_bool "game separates chi(C4) at k=2" false
    (Pebble.equivalent 2 even.Wlcq_cfi.Cfi.graph odd.Wlcq_cfi.Cfi.graph)

let test_pebble_positions () =
  (* within one graph: Duplicator wins between tuples in the same
     orbit, loses between atomically incompatible ones *)
  let g = Builders.path 4 in
  check_bool "symmetric tuples" true
    (Pebble.duplicator_wins 2 g g [| 0; 1 |] [| 3; 2 |]);
  check_bool "edge vs non-edge" false
    (Pebble.duplicator_wins 2 g g [| 0; 1 |] [| 0; 2 |]);
  check_bool "endpoint vs midpoint" false
    (Pebble.duplicator_wins 2 g g [| 0; 0 |] [| 1; 1 |])

let pebble_qcheck =
  [
    QCheck.Test.make
      ~name:"pebble game agrees with folklore 2-WL on random pairs"
      ~count:25
      QCheck.(triple (int_range 2 5) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = Gen.gnp (Prng.create s2) n 0.5 in
         Pebble.equivalent 2 g1 g2 = Kwl.equivalent 2 g1 g2);
    QCheck.Test.make
      ~name:"pebble game agrees with folklore 3-WL on tiny pairs"
      ~count:10
      QCheck.(triple (int_range 2 4) (int_bound 100000) (int_bound 100000))
      (fun (n, s1, s2) ->
         let g1 = Gen.gnp (Prng.create s1) n 0.5 in
         let g2 = Gen.gnp (Prng.create s2) n 0.5 in
         Pebble.equivalent 3 g1 g2 = Kwl.equivalent 3 g1 g2);
    QCheck.Test.make
      ~name:"pebble positions agree with joint FWL(2) colours" ~count:10
      QCheck.(pair (int_range 2 4) (int_bound 100000))
      (fun (n, seed) ->
         let g = Gen.gnp (Prng.create seed) n 0.5 in
         let r = Kwl.run 2 g in
         let ok = ref true in
         for p = 0 to (n * n) - 1 do
           for q = 0 to (n * n) - 1 do
             let t1 = [| p / n; p mod n |] and t2 = [| q / n; q mod n |] in
             let game = Pebble.duplicator_wins 2 g g t1 t2 in
             let colours =
               r.Kwl.colours.(p) = r.Kwl.colours.(q)
             in
             if game <> colours then ok := false
           done
         done;
         !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Hom profiles                                                        *)
(* ------------------------------------------------------------------ *)

let test_hom_profile_patterns () =
  (* connected graphs up to iso: 1 on 1 vertex, 1 on 2, 2 on 3
     (path, triangle), 6 on 4 vertices *)
  check_int "patterns up to size 3, unbounded tw" 4
    (List.length (Hom_profile.patterns ~max_size:3 ~tw_bound:10));
  check_int "patterns up to size 4" 10
    (List.length (Hom_profile.patterns ~max_size:4 ~tw_bound:10));
  (* trees only for tw_bound 1: 1 + 1 + 1 + 2 = 5 up to size 4 *)
  check_int "trees up to size 4" 5
    (List.length (Hom_profile.patterns ~max_size:4 ~tw_bound:1))

let test_hom_profile_difference () =
  let g1 = Builders.two_triangles () and g2 = Builders.cycle 6 in
  (* no tree up to size 6 separates them *)
  check_bool "tw-1 profile identical" true
    (Option.is_none
       (Hom_profile.first_difference ~max_size:5 ~tw_bound:1 g1 g2));
  (* the triangle is the smallest treewidth-2 separator *)
  (match Hom_profile.first_difference ~max_size:4 ~tw_bound:2 g1 g2 with
   | None -> Alcotest.fail "expected a difference"
   | Some (pattern, c1, c2) ->
     check_bool "separator is the triangle" true
       (Iso.isomorphic pattern (Builders.cycle 3));
     check_bool "counts 12 vs 0" true
       Wlcq_util.Bigint.(equal c1 (of_int 12) && equal c2 (of_int 0)));
  (* profiles of isomorphic graphs agree *)
  let pats = Hom_profile.patterns ~max_size:4 ~tw_bound:2 in
  check_bool "profiles of isomorphic graphs" true
    (Hom_profile.profile ~patterns:pats (Builders.petersen ())
     = Hom_profile.profile ~patterns:pats (Builders.petersen ()))

let test_wl_dimension_of_pair () =
  let g1 = Builders.two_triangles () and g2 = Builders.cycle 6 in
  check_bool "dimension of (2K3, C6) pair is 2" true
    (Option.equal Int.equal
       (Equivalence.wl_dimension_of_pair g1 g2 ~max_k:3)
       (Some 2));
  let g = Builders.petersen () in
  check_bool "isomorphic pair never distinguished" true
    (Option.is_none (Equivalence.wl_dimension_of_pair g g ~max_k:3))

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_wl"
    [
      ( "refinement",
        [
          Alcotest.test_case "classic pairs" `Quick test_refinement_classics;
          Alcotest.test_case "stable counts" `Quick
            test_refinement_stable_counts;
          Alcotest.test_case "isomorphic equivalent" `Quick
            test_refinement_isomorphic_graphs_equivalent;
        ] );
      ( "kwl",
        [
          Alcotest.test_case "2-WL separates 2K3/C6" `Quick
            test_kwl_distinguishes_2k3_c6;
          Alcotest.test_case "isomorphic invariance" `Quick
            test_kwl_on_isomorphic;
          Alcotest.test_case "k=1 rejected" `Quick test_kwl_rejects_k1;
          Alcotest.test_case "overflow guard" `Quick test_kwl_overflow_guard;
          Alcotest.test_case "engine vs reference on CFI pairs" `Quick
            test_kwl_engine_vs_reference_cfi;
          Alcotest.test_case "monotonicity" `Quick test_kwl_monotone;
          Alcotest.test_case "SRG pair 2-WL-equivalent" `Quick
            test_srg_pair_2wl_equivalent;
          Alcotest.test_case "SRG pair 3-WL-separated" `Slow
            test_srg_pair_3wl_separated;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "hom oracle classics" `Quick
            test_hom_oracle_crosscheck_classics;
          Alcotest.test_case "dimension of pair" `Quick
            test_wl_dimension_of_pair;
        ] );
      qsuite "equivalence-properties" equivalence_qcheck;
      qsuite "kwl-engine-properties" kwl_engine_qcheck;
      ( "pebble",
        [
          Alcotest.test_case "classics" `Quick test_pebble_classics;
          Alcotest.test_case "positions" `Quick test_pebble_positions;
        ] );
      qsuite "pebble-properties" pebble_qcheck;
      ( "hom-profile",
        [
          Alcotest.test_case "pattern enumeration" `Quick
            test_hom_profile_patterns;
          Alcotest.test_case "first difference" `Quick
            test_hom_profile_difference;
        ] );
      ( "fractional",
        [
          Alcotest.test_case "classics" `Quick test_fractional_classics;
          Alcotest.test_case "equitable partition" `Quick
            test_equitable_partition;
          Alcotest.test_case "inequitable rejected" `Quick
            test_degree_matrix_rejects_inequitable;
        ] );
      qsuite "fractional-properties" fractional_qcheck;
    ]
