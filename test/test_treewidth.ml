open Wlcq_graph
open Wlcq_treewidth
module Prng = Wlcq_util.Prng
module Bitset = Wlcq_util.Bitset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Known treewidths used throughout the suite. *)
let known =
  [
    ("K1", Builders.clique 1, 0);
    ("K2", Builders.clique 2, 1);
    ("K5", Builders.clique 5, 4);
    ("P6", Builders.path 6, 1);
    ("C5", Builders.cycle 5, 2);
    ("C8", Builders.cycle 8, 2);
    ("star7", Builders.star 7, 1);
    ("K33", Builders.complete_bipartite 3 3, 3);
    ("K27", Builders.complete_bipartite 2 7, 2);
    ("grid3x3", Builders.grid 3 3, 3);
    ("grid3x5", Builders.grid 3 5, 3);
    ("grid4x4", Builders.grid 4 4, 4);
    ("petersen", Builders.petersen (), 4);
    ("Q3", Builders.hypercube 3, 3);
    ("2K3", Builders.two_triangles (), 2);
    ("wheel6", Builders.wheel 6, 3);
    ("edgeless", Graph.empty 5, 0);
  ]

let test_known_treewidths () =
  List.iter
    (fun (name, g, expected) ->
       check_int ("tw " ^ name) expected (Exact.treewidth g))
    known

let test_empty_graph () =
  check_int "tw of empty graph" (-1) (Exact.treewidth (Graph.empty 0))

let test_dp_agrees () =
  List.iter
    (fun (name, g, expected) ->
       if Graph.num_vertices g <= 16 then
         check_int ("dp tw " ^ name) expected (Exact.treewidth_dp g))
    known

let test_optimal_decomposition_valid () =
  List.iter
    (fun (name, g, expected) ->
       if Graph.num_vertices g > 0 then begin
         let d = Exact.optimal_decomposition g in
         check_bool ("valid decomposition " ^ name) true
           (Decomposition.is_valid_for d g);
         check_int ("decomposition width " ^ name) expected
           (Decomposition.width d)
       end)
    known

let test_is_at_most () =
  let g = Builders.grid 3 3 in
  check_bool "grid tw <= 3" true (Exact.is_at_most g 3);
  check_bool "grid tw not <= 2" false (Exact.is_at_most g 2)

let test_heuristics_bracket () =
  List.iter
    (fun (name, g, expected) ->
       if Graph.num_vertices g > 0 then begin
         check_bool ("ub >= tw " ^ name) true
           (Heuristics.upper_bound g >= expected);
         check_bool ("lb <= tw " ^ name) true
           (Heuristics.lower_bound g <= expected)
       end)
    known

let test_width_of_order () =
  (* eliminating a path from one end has width 1 *)
  let g = Builders.path 5 in
  check_int "path natural order" 1
    (Elimination.width_of_order g [ 0; 1; 2; 3; 4 ]);
  (* eliminating the middle of a path first costs 2 *)
  check_int "path bad order" 2
    (Elimination.width_of_order g [ 2; 0; 1; 3; 4 ])

let test_fill_graph () =
  (* eliminating the centre of a star first fills the leaves into a
     clique *)
  let g = Builders.star 3 in
  let f = Elimination.fill_graph g [ 0; 1; 2; 3 ] in
  check_int "star fill-in is K4" 6 (Graph.num_edges f)

let test_decomposition_validation () =
  let g = Builders.cycle 4 in
  let bad =
    Decomposition.make (Graph.empty 1) [| Bitset.of_list 4 [ 0; 1 ] |]
  in
  check_bool "missing vertices rejected" false
    (Decomposition.is_valid_for bad g);
  let trivial = Decomposition.singleton g in
  check_bool "singleton always valid" true
    (Decomposition.is_valid_for trivial g);
  check_int "singleton width" 3 (Decomposition.width trivial)

let test_disconnected () =
  let g = Ops.disjoint_union (Builders.clique 4) (Builders.cycle 5) in
  check_int "tw of disjoint union" 3 (Exact.treewidth g);
  let d = Exact.optimal_decomposition g in
  check_bool "disconnected decomposition valid" true
    (Decomposition.is_valid_for d g)

let test_nice_structure () =
  List.iter
    (fun (name, g, expected) ->
       if Graph.num_vertices g > 0 then begin
         let d = Exact.optimal_decomposition g in
         let nd = Nice.of_decomposition d ~universe:(Graph.num_vertices g) in
         check_bool ("nice valid " ^ name) true (Nice.is_valid_for nd g);
         check_int ("nice width " ^ name) expected (Nice.width nd)
       end)
    known

let test_nice_empty () =
  let g = Graph.empty 0 in
  let d = Exact.optimal_decomposition g in
  let nd = Nice.of_decomposition d ~universe:0 in
  check_bool "nice of empty valid" true (Nice.is_valid_for nd g);
  check_int "nice of empty width" (-1) (Nice.width nd)

let nice_qcheck =
  [
    QCheck.Test.make ~name:"nice conversion is valid and width-preserving"
      ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let d = Exact.optimal_decomposition g in
         let nd = Nice.of_decomposition d ~universe:n in
         Nice.is_valid_for nd g && Nice.width nd = Decomposition.width d);
  ]

let treewidth_qcheck =
  [
    QCheck.Test.make ~name:"bb agrees with subset dp" ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         Exact.treewidth g = Exact.treewidth_dp g);
    QCheck.Test.make ~name:"optimal decomposition is valid and tight"
      ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let d = Exact.optimal_decomposition g in
         Decomposition.is_valid_for d g
         && Decomposition.width d = Exact.treewidth g);
    QCheck.Test.make ~name:"treewidth of trees is at most 1" ~count:40
      QCheck.(pair (int_range 2 20) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         Exact.treewidth (Gen.random_tree rng n) = 1);
    QCheck.Test.make ~name:"any elimination order upper-bounds tw" ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let order = Array.init n (fun i -> i) in
         Prng.shuffle rng order;
         Elimination.width_of_order g (Array.to_list order)
         >= Exact.treewidth g);
    QCheck.Test.make ~name:"random order yields valid decomposition"
      ~count:40
      QCheck.(pair (int_range 1 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let order = Array.init n (fun i -> i) in
         Prng.shuffle rng order;
         let order = Array.to_list order in
         let d = Elimination.decomposition_of_order g order in
         Decomposition.is_valid_for d g
         && Decomposition.width d = Elimination.width_of_order g order);
    QCheck.Test.make ~name:"treewidth monotone under vertex deletion"
      ~count:40
      QCheck.(pair (int_range 2 9) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.4 in
         let v = Prng.int rng n in
         Exact.treewidth (Ops.remove_vertex g v) <= Exact.treewidth g);
  ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_treewidth"
    [
      ( "exact",
        [
          Alcotest.test_case "known treewidths" `Quick test_known_treewidths;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "dp agrees" `Quick test_dp_agrees;
          Alcotest.test_case "optimal decomposition" `Quick
            test_optimal_decomposition_valid;
          Alcotest.test_case "is_at_most" `Quick test_is_at_most;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
        ] );
      ( "heuristics",
        [ Alcotest.test_case "bracket" `Quick test_heuristics_bracket ] );
      ( "elimination",
        [
          Alcotest.test_case "width of order" `Quick test_width_of_order;
          Alcotest.test_case "fill graph" `Quick test_fill_graph;
        ] );
      ( "decomposition",
        [ Alcotest.test_case "validation" `Quick test_decomposition_validation ]
      );
      ( "nice",
        [
          Alcotest.test_case "structure" `Quick test_nice_structure;
          Alcotest.test_case "empty" `Quick test_nice_empty;
        ] );
      qsuite "nice-properties" nice_qcheck;
      qsuite "properties" treewidth_qcheck;
    ]
