(* Binary regression tests for bin/wlcq: the exit-code contract
   (0 success / positive verdict, 1 negative verdict, 2 malformed
   input, 3 budget exhausted) and the [error:] convention on stderr.

   The dune stanza declares the binary as a dependency; tests run from
   the build directory, so the executable sits at [../bin/wlcq.exe]. *)

let wlcq = "../bin/wlcq.exe"

let run_capture args =
  let err = Filename.temp_file "wlcq_test" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s >/dev/null 2>%s" wlcq args (Filename.quote err))
  in
  let ic = open_in err in
  let n = in_channel_length ic in
  let stderr_text = really_input_string ic n in
  close_in ic;
  Sys.remove err;
  (code, stderr_text)

let check_code name expected args =
  let code, _ = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") expected code

let check_malformed name args =
  let code, stderr_text = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check bool)
    (name ^ ": stderr starts with 'error: '")
    true
    (String.length stderr_text >= 7 && String.equal (String.sub stderr_text 0 7) "error: ")

let q_star = "\"(x1, x2) := exists y . E(x1, y) & E(x2, y)\""

let test_success_codes () =
  check_code "tw on K4" 0 "tw --graph clique:4";
  check_code "ans star query on K4" 0 (Printf.sprintf "ans %s --graph clique:4" q_star);
  check_code "widths" 0 (Printf.sprintf "widths %s" q_star);
  check_code "wl equivalent" 0 "wl -k 2 --g1 cycle:5 --g2 cycle:5"

let test_negative_verdict () =
  (* C6 vs 2K3 are distinguished by 2-WL: negative verdict, exit 1 *)
  check_code "wl inequivalent" 1 "wl -k 2 --g1 cycle:6 --g2 twotriangles"

let test_malformed_inputs () =
  check_malformed "bad graph spec" "tw --graph zzz";
  check_malformed "bad graph spec for ans"
    (Printf.sprintf "ans %s --graph zzz" q_star);
  check_malformed "bad query" "ans \"garbage query\" --graph clique:3";
  check_malformed "bad union query" "union \"garbage\"";
  check_malformed "negative deadline" "tw --graph clique:4 --deadline-ms=-3";
  check_malformed "zero memory ceiling" "tw --graph clique:4 --max-live-mb=0";
  check_malformed "bad kgraph" "kg-ans \"(x) := E0(x, y)\" --graph zzz"

let test_budget_exhaustion () =
  (* a 1 ms deadline cannot finish branch and bound on a dense
     28-vertex graph: the CLI must report the degraded bound and
     exit 3 *)
  check_code "tw degrades under 1 ms" 3 "tw --graph gnp:28,0.5,7 --deadline-ms 1";
  check_code "ans exhausts under tiny deadline" 3
    (Printf.sprintf "ans %s --graph clique:32 --deadline-ms 0.05" q_star);
  (* generous deadlines change nothing *)
  check_code "tw with slack deadline" 0
    "tw --graph cycle:8 --deadline-ms 10000"

(* ---- PR 8: metrics exposition and offline diffing ---------------- *)

let read_file file = In_channel.with_open_bin file In_channel.input_all

let write_file file text =
  Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc text)

let contains needle s =
  let n = String.length needle and h = String.length s in
  let rec go i =
    i + n <= h && (String.equal (String.sub s i n) needle || go (i + 1))
  in
  go 0

let with_tmp suffix f =
  let file = Filename.temp_file "wlcq_test" suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () -> f file)

(* A run with [--metrics-out] must leave a complete OpenMetrics file
   behind whatever the exit code: the flush runs at exit, so degraded
   (3) and malformed (2) paths still document themselves. *)
let check_metrics_out ?(require_metrics = true) name expected_code args =
  with_tmp ".om" (fun file ->
      let code, _ =
        run_capture (Printf.sprintf "%s --metrics-out %s" args file)
      in
      Alcotest.(check int) (name ^ ": exit code") expected_code code;
      let text = read_file file in
      Alcotest.(check bool)
        (name ^ ": exposition ends with # EOF")
        true
        (contains "# EOF" text);
      if require_metrics then
        Alcotest.(check bool)
          (name ^ ": exposition carries wlcq_ metrics")
          true
          (contains "# TYPE wlcq_" text))

let test_metrics_out_success () =
  check_metrics_out "tw success" 0 "tw --graph clique:4"

let test_metrics_out_exhausted () =
  check_metrics_out "tw degraded under 1 ms" 3
    "tw --graph gnp:28,0.5,7 --deadline-ms 1"

let test_metrics_out_malformed () =
  (* the run dies validating its budget, before any engine work: the
     flush still writes a complete (if empty) exposition *)
  check_metrics_out ~require_metrics:false "bad deadline still flushes" 2
    "tw --graph clique:4 --deadline-ms=-3"

let test_journal_out () =
  with_tmp ".jsonl" (fun file ->
      let code, _ =
        run_capture
          (Printf.sprintf
             "tw --graph gnp:28,0.5,7 --deadline-ms 1 --journal %s" file)
      in
      Alcotest.(check int) "journal run exit code" 3 code;
      let lines = String.split_on_char '\n' (String.trim (read_file file)) in
      Alcotest.(check bool) "journal has events" true (List.length lines >= 1);
      Alcotest.(check bool)
        "journal mentions the budget trip" true
        (List.exists (contains "budget.trip") lines))

let om_before =
  "# TYPE wlcq_test_work counter\n\
   wlcq_test_work_total 100\n\
   # TYPE wlcq_test_lat_ns histogram\n\
   wlcq_test_lat_ns_bucket{le=\"8\"} 10\n\
   wlcq_test_lat_ns_bucket{le=\"+Inf\"} 10\n\
   wlcq_test_lat_ns_sum 60\n\
   wlcq_test_lat_ns_count 10\n\
   # EOF\n"

(* the histogram mass moves <=8 -> <=32 (a 4x p99 shift) and the
   counter grows 10x: both above the 2x default threshold *)
let om_after =
  "# TYPE wlcq_test_work counter\n\
   wlcq_test_work_total 1000\n\
   # TYPE wlcq_test_lat_ns histogram\n\
   wlcq_test_lat_ns_bucket{le=\"8\"} 0\n\
   wlcq_test_lat_ns_bucket{le=\"32\"} 10\n\
   wlcq_test_lat_ns_bucket{le=\"+Inf\"} 10\n\
   wlcq_test_lat_ns_sum 250\n\
   wlcq_test_lat_ns_count 10\n\
   # EOF\n"

let test_obs_diff_identical () =
  with_tmp ".om" (fun a ->
      with_tmp ".om" (fun b ->
          write_file a om_before;
          write_file b om_before;
          let code, _ = run_capture (Printf.sprintf "obs-diff %s %s" a b) in
          Alcotest.(check int) "identical snapshots exit 0" 0 code))

let test_obs_diff_regression () =
  with_tmp ".om" (fun a ->
      with_tmp ".om" (fun b ->
          write_file a om_before;
          write_file b om_after;
          let code, _ = run_capture (Printf.sprintf "obs-diff %s %s" a b) in
          Alcotest.(check int) "2x regression exits 1" 1 code;
          (* a threshold above the injected shift silences the verdict *)
          let code, _ =
            run_capture
              (Printf.sprintf "obs-diff --threshold 20 %s %s" a b)
          in
          Alcotest.(check int) "threshold 20x exits 0" 0 code))

let test_obs_diff_malformed () =
  with_tmp ".om" (fun a ->
      with_tmp ".om" (fun b ->
          write_file a om_before;
          write_file b "wlcq_x_total nonsense\n# EOF\n";
          let code, stderr_text =
            run_capture (Printf.sprintf "obs-diff %s %s" a b)
          in
          Alcotest.(check int) "malformed snapshot exits 2" 2 code;
          Alcotest.(check bool)
            "stderr uses the error: convention" true
            (contains "error: " stderr_text)));
  let code, _ = run_capture "obs-diff /nonexistent.a /nonexistent.b" in
  Alcotest.(check int) "missing file exits 2" 2 code

(* ---- PR 10: the daemon and its client ---------------------------- *)

(* spawn [wlcq serve ...] detached from our stdio; returns the pid *)
let start_daemon args =
  let argv = Array.of_list (wlcq :: args) in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process wlcq argv devnull devnull devnull)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wlcq-cli-%d-%d.sock" (Unix.getpid ()) !n)

let wait_for ?(timeout_s = 10.0) what f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* bounded waitpid: a drain that never finishes must fail the test,
   not hang the suite *)
let wait_exit ?(timeout_s = 15.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "daemon did not exit within the grace period"
      end
      else begin
        Unix.sleepf 0.02;
        go ()
      end
    | _, status -> status
  in
  go ()

let kill_if_alive pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid)
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let with_daemon args f =
  let socket = fresh_socket () in
  let pid = start_daemon ([ "serve"; "--socket"; socket ] @ args) in
  Fun.protect
    ~finally:(fun () ->
      kill_if_alive pid;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      wait_for "daemon socket" (fun () -> Sys.file_exists socket);
      f ~socket ~pid)

let call_code socket args =
  fst (run_capture (Printf.sprintf "call --socket %s %s" socket args))

let test_serve_sigterm_drain () =
  with_daemon [ "--workers"; "1" ] (fun ~socket ~pid ->
      Alcotest.(check int) "call ping exits 0" 0 (call_code socket "ping");
      Alcotest.(check int) "call treewidth exits 0" 0
        (call_code socket "treewidth --graph clique:4");
      Unix.kill pid Sys.sigterm;
      (match wait_exit pid with
       | Unix.WEXITED 0 -> ()
       | Unix.WEXITED n -> Alcotest.failf "drain exited %d, wanted 0" n
       | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
         Alcotest.fail "drain must exit, not die on a signal");
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket))

let test_serve_call_exit_codes () =
  with_daemon [ "--workers"; "1" ] (fun ~socket ~pid:_ ->
      Alcotest.(check int) "unknown verb exits 2" 2
        (call_code socket "frobnicate");
      Alcotest.(check int) "bad graph spec exits 2" 2
        (call_code socket "treewidth --graph zzz");
      Alcotest.(check int) "1 ms deadline exits 3" 3
        (call_code socket "treewidth --graph gnp:40,0.4,3 --deadline-ms 1");
      Alcotest.(check int) "daemon still serves, exit 0" 0
        (call_code socket "ping"));
  (* no daemon at all: connect failure is malformed input, exit 2 *)
  Alcotest.(check int) "missing socket exits 2" 2
    (call_code "/nonexistent-wlcq.sock" "ping")

(* satellite: a periodic flush plus an atomic snapshot rename means a
   kill -9 still leaves a complete, parseable OpenMetrics file *)
let test_serve_kill9_snapshot () =
  with_tmp ".om" (fun metrics ->
      Sys.remove metrics;
      with_daemon
        [ "--workers"; "1"; "--flush-interval-s"; "0.05"; "--metrics-out";
          metrics ]
        (fun ~socket ~pid ->
          Alcotest.(check int) "served before the kill" 0
            (call_code socket "ping");
          wait_for "first periodic flush" (fun () -> Sys.file_exists metrics);
          Unix.kill pid Sys.sigkill;
          (match wait_exit pid with
           | Unix.WSIGNALED s when s = Sys.sigkill -> ()
           | _ -> Alcotest.fail "kill -9 must terminate the daemon");
          let text = read_file metrics in
          Alcotest.(check bool)
            "snapshot is complete (# EOF)" true (contains "# EOF" text);
          Alcotest.(check bool)
            "snapshot carries wlcq_ metrics" true
            (contains "# TYPE wlcq_" text)))

(* storm-lite through the real binary: seeded faults on the live
   socket paths; the daemon must keep answering and drain cleanly *)
let test_serve_fault_storm_lite () =
  with_daemon
    [ "--workers"; "1"; "--fault-seed"; "42"; "--fault-rate"; "0.3";
      "--fault-sites"; "read_stall,write_stall,worker_raise";
      "--write-timeout-s"; "0.2" ]
    (fun ~socket ~pid ->
      (* every call may be shed or dropped — that is the point; the
         binary must keep exiting with contract codes, never crash *)
      for i = 1 to 25 do
        let code =
          call_code socket
            (if i mod 3 = 0 then "treewidth --graph clique:4 --timeout-s 2"
             else "ping --timeout-s 2")
        in
        Alcotest.(check bool)
          (Printf.sprintf "call %d exits within the contract" i)
          true
          (List.mem code [ 0; 2; 3; 4 ])
      done;
      (* under rate 0.3 a ping soon gets through *)
      let rec ping_until n =
        if call_code socket "ping --timeout-s 2" = 0 then ()
        else if n = 0 then Alcotest.fail "daemon unresponsive under storm"
        else ping_until (n - 1)
      in
      ping_until 20;
      Unix.kill pid Sys.sigterm;
      match wait_exit pid with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "storm-lite daemon must drain to exit 0")

let () =
  Alcotest.run "cli"
    [
      ( "exit codes",
        [
          Alcotest.test_case "success" `Quick test_success_codes;
          Alcotest.test_case "negative verdict" `Quick test_negative_verdict;
          Alcotest.test_case "malformed input" `Quick test_malformed_inputs;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics-out on success" `Quick
            test_metrics_out_success;
          Alcotest.test_case "metrics-out on exit 3" `Quick
            test_metrics_out_exhausted;
          Alcotest.test_case "metrics-out on exit 2" `Quick
            test_metrics_out_malformed;
          Alcotest.test_case "journal file on exit 3" `Quick test_journal_out;
          Alcotest.test_case "obs-diff identical" `Quick
            test_obs_diff_identical;
          Alcotest.test_case "obs-diff detects 2x shift" `Quick
            test_obs_diff_regression;
          Alcotest.test_case "obs-diff malformed input" `Quick
            test_obs_diff_malformed;
        ] );
      ( "serve",
        [
          Alcotest.test_case "SIGTERM drains to exit 0" `Quick
            test_serve_sigterm_drain;
          Alcotest.test_case "call exit-code contract" `Quick
            test_serve_call_exit_codes;
          Alcotest.test_case "kill -9 leaves a parseable snapshot" `Quick
            test_serve_kill9_snapshot;
          Alcotest.test_case "fault storm-lite over the binary" `Slow
            test_serve_fault_storm_lite;
        ] );
    ]
