(* Binary regression tests for bin/wlcq: the exit-code contract
   (0 success / positive verdict, 1 negative verdict, 2 malformed
   input, 3 budget exhausted) and the [error:] convention on stderr.

   The dune stanza declares the binary as a dependency; tests run from
   the build directory, so the executable sits at [../bin/wlcq.exe]. *)

let wlcq = "../bin/wlcq.exe"

let run_capture args =
  let err = Filename.temp_file "wlcq_test" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s >/dev/null 2>%s" wlcq args (Filename.quote err))
  in
  let ic = open_in err in
  let n = in_channel_length ic in
  let stderr_text = really_input_string ic n in
  close_in ic;
  Sys.remove err;
  (code, stderr_text)

let check_code name expected args =
  let code, _ = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") expected code

let check_malformed name args =
  let code, stderr_text = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check bool)
    (name ^ ": stderr starts with 'error: '")
    true
    (String.length stderr_text >= 7 && String.equal (String.sub stderr_text 0 7) "error: ")

let q_star = "\"(x1, x2) := exists y . E(x1, y) & E(x2, y)\""

let test_success_codes () =
  check_code "tw on K4" 0 "tw --graph clique:4";
  check_code "ans star query on K4" 0 (Printf.sprintf "ans %s --graph clique:4" q_star);
  check_code "widths" 0 (Printf.sprintf "widths %s" q_star);
  check_code "wl equivalent" 0 "wl -k 2 --g1 cycle:5 --g2 cycle:5"

let test_negative_verdict () =
  (* C6 vs 2K3 are distinguished by 2-WL: negative verdict, exit 1 *)
  check_code "wl inequivalent" 1 "wl -k 2 --g1 cycle:6 --g2 twotriangles"

let test_malformed_inputs () =
  check_malformed "bad graph spec" "tw --graph zzz";
  check_malformed "bad graph spec for ans"
    (Printf.sprintf "ans %s --graph zzz" q_star);
  check_malformed "bad query" "ans \"garbage query\" --graph clique:3";
  check_malformed "bad union query" "union \"garbage\"";
  check_malformed "negative deadline" "tw --graph clique:4 --deadline-ms=-3";
  check_malformed "zero memory ceiling" "tw --graph clique:4 --max-live-mb=0";
  check_malformed "bad kgraph" "kg-ans \"(x) := E0(x, y)\" --graph zzz"

let test_budget_exhaustion () =
  (* a 1 ms deadline cannot finish branch and bound on a dense
     28-vertex graph: the CLI must report the degraded bound and
     exit 3 *)
  check_code "tw degrades under 1 ms" 3 "tw --graph gnp:28,0.5,7 --deadline-ms 1";
  check_code "ans exhausts under tiny deadline" 3
    (Printf.sprintf "ans %s --graph clique:32 --deadline-ms 0.05" q_star);
  (* generous deadlines change nothing *)
  check_code "tw with slack deadline" 0
    "tw --graph cycle:8 --deadline-ms 10000"

let () =
  Alcotest.run "cli"
    [
      ( "exit codes",
        [
          Alcotest.test_case "success" `Quick test_success_codes;
          Alcotest.test_case "negative verdict" `Quick test_negative_verdict;
          Alcotest.test_case "malformed input" `Quick test_malformed_inputs;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
        ] );
    ]
