open Wlcq_gnn
open Wlcq_graph
module Core = Wlcq_core
module Bigint = Wlcq_util.Bigint
module Prng = Wlcq_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let star2 = Core.Star.query 2
let star3 = Core.Star.query 3

let test_make_orders () =
  let g = Builders.grid 3 3 in
  let n1 = Gnn.make ~order:1 g in
  check_int "order-1 features on vertices" 9 (Array.length n1.Gnn.features);
  let n2 = Gnn.make ~order:2 g in
  check_int "order-2 features on pairs" 81 (Array.length n2.Gnn.features);
  check_bool "fully refined has stable classes" true (n2.Gnn.num_classes > 1)

let test_proposition3_partition () =
  (* the fully-refined partition is the k-WL partition: histograms of
     two isomorphic graphs agree at every order *)
  let g = Builders.petersen () in
  let rng = Prng.create 5 in
  let p = Array.init 10 (fun i -> i) in
  Prng.shuffle rng p;
  let h = Ops.relabel g p in
  check_bool "order-1 indistinguishable" true
    (Gnn.indistinguishable ~order:1 g h);
  check_bool "order-2 indistinguishable" true
    (Gnn.indistinguishable ~order:2 g h)

let test_sufficient_order () =
  check_int "star2 needs order 2" 2 (Gnn.sufficient_order star2);
  check_int "star3 needs order 3" 3 (Gnn.sufficient_order star3);
  check_int "edge query needs order 1" 1
    (Gnn.sufficient_order
       (Core.Parser.parse_exn "(x1, x2) := E(x1, x2)").Core.Parser.query)

let test_readout_correct_when_order_sufficient () =
  List.iter
    (fun g ->
       let n = Gnn.make ~order:2 g in
       match Gnn.answer_count_readout star2 n with
       | None -> Alcotest.fail "order 2 should suffice for star2"
       | Some v ->
         check_bool "readout matches direct count" true
           (Bigint.equal v (Bigint.of_int (Core.Cq.count_answers star2 g))))
    [ Builders.cycle 5; Builders.clique 4; Builders.two_triangles () ]

let test_readout_refuses_low_order () =
  let n = Gnn.make ~order:1 (Builders.cycle 5) in
  check_bool "order 1 refuses star2" true
    (Option.is_none (Gnn.answer_count_readout star2 n))

let test_inexpressibility_witness () =
  (* the Theorem 1 lower bound as a GNN statement: a pair with equal
     order-1 features but different star2 answer counts *)
  match Gnn.inexpressibility_witness star2 with
  | None -> Alcotest.fail "expected a witness pair"
  | Some (g1, g2) ->
    check_bool "equal order-1 features" true
      (Gnn.indistinguishable ~order:1 g1 g2);
    check_bool "different answer counts" true
      (Core.Cq.count_answers star2 g1 <> Core.Cq.count_answers star2 g2);
    (* an order-2 GNN does distinguish them, as Theorem 1 promises *)
    check_bool "order-2 distinguishes" false
      (Gnn.indistinguishable ~order:2 g1 g2)

let test_no_witness_for_full_query () =
  let q = Core.Cq.make (Builders.cycle 4) [ 0; 1; 2; 3 ] in
  check_bool "full-query witness unsupported" true
    (Option.is_none (Gnn.inexpressibility_witness q))

let gnn_qcheck =
  [
    QCheck.Test.make
      ~name:"readout equals direct count whenever the order suffices"
      ~count:20
      QCheck.(pair (int_range 3 6) (int_bound 100000))
      (fun (n, seed) ->
         let rng = Prng.create seed in
         let g = Gen.gnp rng n 0.5 in
         let net = Gnn.make ~order:2 g in
         match Gnn.answer_count_readout star2 net with
         | None -> false
         | Some v ->
           Bigint.equal v (Bigint.of_int (Core.Cq.count_answers star2 g)));
  ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "wlcq_gnn"
    [
      ( "gnn",
        [
          Alcotest.test_case "orders" `Quick test_make_orders;
          Alcotest.test_case "Proposition 3 partition" `Quick
            test_proposition3_partition;
          Alcotest.test_case "sufficient order" `Quick test_sufficient_order;
          Alcotest.test_case "readout when sufficient" `Quick
            test_readout_correct_when_order_sufficient;
          Alcotest.test_case "readout refuses low order" `Quick
            test_readout_refuses_low_order;
          Alcotest.test_case "inexpressibility witness" `Quick
            test_inexpressibility_witness;
          Alcotest.test_case "full query unsupported" `Quick
            test_no_witness_for_full_query;
        ] );
      qsuite "properties" gnn_qcheck;
    ]
