(* Tests for Wlcq_serve: the wlcq/1 wire protocol (round-trip and
   fuzz — malformed frames must come back as structured errors, never
   exceptions or disconnects), end-to-end daemon behaviour against an
   in-process server (sessions, deadlines, shedding, drain, idle
   reaping), and the seeded fault storm: hundreds of injected
   accept/read/write/worker failures against a live daemon, which must
   survive them all and still drain cleanly.

   Every server here runs in its own [Domain] on a fresh temp socket;
   [workers = 1] keeps the fault-injection draw streams deterministic
   (each site is drawn from a single domain, see Fault's contract). *)

module Wire = Wlcq_serve.Wire
module Server = Wlcq_serve.Server
module Client = Wlcq_serve.Client
module Budget = Wlcq_robust.Budget
module Fault = Wlcq_robust.Fault
module Obs = Wlcq_obs.Obs
module Cq = Wlcq_core.Cq
module Parser = Wlcq_core.Parser
module Spec = Wlcq_graph.Spec

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let status_is st (r : Wire.response) =
  String.equal
    (Wire.status_to_string r.Wire.r_status)
    (Wire.status_to_string st)

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Wire: round-trip                                                    *)
(* ------------------------------------------------------------------ *)

(* strings exercising the escaping: newlines, backslashes, '=',
   spaces, NULs and high bytes must all round-trip *)
let gen_string =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_bound 8)
         (oneofl
            [ "a"; "Z"; "0"; " "; "="; "\n"; "\\"; "\\n"; "\x00"; "\xff";
              "cycle:6"; "E(x1, y)"; ":="; "-" ])))

(* deadlines are printed with %g: whole milliseconds round-trip *)
let gen_deadline =
  QCheck.Gen.(
    oneof [ return None; map (fun n -> Some (float_of_int n)) (int_range 1 60_000) ])

let gen_op =
  QCheck.Gen.(
    oneof
      [ return Wire.Ping;
        map3
          (fun k g1 g2 -> Wire.Decide { k; g1; g2 })
          (int_range 1 5) gen_string gen_string;
        map2 (fun query graph -> Wire.Count { query; graph }) gen_string
          gen_string;
        map2
          (fun queries graph -> Wire.Count_batch { queries; graph })
          (list_size (int_range 1 5) gen_string)
          gen_string;
        map (fun graph -> Wire.Treewidth { graph }) gen_string ])

let gen_request =
  QCheck.Gen.(
    map
      (fun (id, deadline_ms, max_live_mb, op) ->
         { Wire.id; deadline_ms; max_live_mb; op })
      (quad gen_string gen_deadline
         (oneof [ return None; map Option.some (int_range 1 4096) ])
         gen_op))

let gen_response =
  QCheck.Gen.(
    map
      (fun (r_id, st, (r_value, r_detail), retry) ->
         {
           Wire.r_id;
           r_status = st;
           r_value;
           r_detail;
           r_retry_after_ms = retry;
         })
      (quad gen_string
         (oneofl
            [ Wire.Ok_; Wire.Degraded; Wire.Exhausted; Wire.Error_;
              Wire.Overloaded; Wire.Draining ])
         (pair gen_string gen_string)
         (oneof [ return None; map Option.some (int_range 0 10_000) ])))

let op_eq (a : Wire.op) (b : Wire.op) =
  match (a, b) with
  | Wire.Ping, Wire.Ping -> true
  | Wire.Decide a, Wire.Decide b ->
    a.k = b.k && String.equal a.g1 b.g1 && String.equal a.g2 b.g2
  | Wire.Count a, Wire.Count b ->
    String.equal a.query b.query && String.equal a.graph b.graph
  | Wire.Count_batch a, Wire.Count_batch b ->
    List.length a.queries = List.length b.queries
    && List.for_all2 String.equal a.queries b.queries
    && String.equal a.graph b.graph
  | Wire.Treewidth a, Wire.Treewidth b -> String.equal a.graph b.graph
  | _ -> false

let request_eq (a : Wire.request) (b : Wire.request) =
  String.equal a.id b.id
  && a.deadline_ms = b.deadline_ms
  && a.max_live_mb = b.max_live_mb
  && op_eq a.op b.op

let response_eq (a : Wire.response) (b : Wire.response) =
  String.equal a.r_id b.r_id
  && a.r_status = b.r_status
  && String.equal a.r_value b.r_value
  && String.equal a.r_detail b.r_detail
  && a.r_retry_after_ms = b.r_retry_after_ms

(* encode -> deframe -> decode is the identity *)
let deframe_one frame =
  let d = Wire.deframer () in
  Wire.feed d (Bytes.of_string frame) (String.length frame);
  match Wire.next_frame d with
  | `Frame payload when Wire.buffered d = 0 -> Some payload
  | `Frame _ | `Await | `Oversize _ -> None

let prop_request_roundtrip =
  qtest "request encode/decode round-trip" (QCheck.make gen_request) (fun r ->
      match deframe_one (Wire.encode_request r) with
      | None -> false
      | Some payload -> (
        match Wire.decode_request payload with
        | Ok r' -> request_eq r r'
        | Error _ -> false))

let prop_response_roundtrip =
  qtest "response encode/decode round-trip" (QCheck.make gen_response)
    (fun r ->
      match deframe_one (Wire.encode_response r) with
      | None -> false
      | Some payload -> (
        match Wire.decode_response payload with
        | Ok r' -> response_eq r r'
        | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Wire: fuzz                                                          *)
(* ------------------------------------------------------------------ *)

let gen_junk =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_bound 16)
         (oneof
            [ oneofl
                [ "wlcq/1 "; "wlcq/1 ping"; "wlcq/2 ping"; "reply"; "id=";
                  "=x"; "status=ok"; "k=1"; "\n"; "\\"; "deadline-ms=nan";
                  "query="; "count-batch" ];
              map (String.make 1) (map Char.chr (int_range 0 255)) ])))

let prop_decode_total =
  qtest ~count:500 "decoders are total on junk payloads"
    (QCheck.make ~print:(Printf.sprintf "%S") gen_junk) (fun s ->
      (match Wire.decode_request s with Ok _ | Error _ -> ());
      (match Wire.decode_response s with Ok _ | Error _ -> ());
      true)

(* random bytes fed in random chunk sizes: the deframer never raises
   and either awaits, yields frames, or reports an oversize header *)
let prop_deframer_total =
  qtest ~count:300 "deframer is total on junk streams"
    (QCheck.make
       ~print:(fun (s, k) -> Printf.sprintf "(%S, %d)" s k)
       QCheck.Gen.(pair gen_junk (int_range 1 7)))
    (fun (s, chunk) ->
      let d = Wire.deframer () in
      let n = String.length s in
      let i = ref 0 in
      let ok = ref true in
      while !ok && !i < n do
        let len = min chunk (n - !i) in
        Wire.feed d (Bytes.of_string (String.sub s !i len)) len;
        i := !i + len;
        let rec drain () =
          match Wire.next_frame d with
          | `Frame _ -> drain ()
          | `Await -> ()
          | `Oversize _ -> ok := false  (* terminal, like the server *)
        in
        drain ()
      done;
      true)

let test_deframer_reassembles () =
  let r1 = { Wire.id = "a"; deadline_ms = None; max_live_mb = None; op = Wire.Ping } in
  let r2 =
    {
      Wire.id = "b";
      deadline_ms = Some 5.0;
      max_live_mb = None;
      op = Wire.Treewidth { graph = "cycle:6" };
    }
  in
  let stream = Wire.encode_request r1 ^ Wire.encode_request r2 in
  let d = Wire.deframer () in
  let got = ref [] in
  String.iter
    (fun c ->
       Wire.feed d (Bytes.make 1 c) 1;
       match Wire.next_frame d with
       | `Frame p -> got := p :: !got
       | `Await -> ()
       | `Oversize _ -> Alcotest.fail "oversize on a valid stream")
    stream;
  match List.rev !got with
  | [ p1; p2 ] ->
    (match (Wire.decode_request p1, Wire.decode_request p2) with
     | Ok a, Ok b ->
       check_bool "first frame round-trips" true (request_eq a r1);
       check_bool "second frame round-trips" true (request_eq b r2)
     | _ -> Alcotest.fail "reassembled frames must decode")
  | frames ->
    Alcotest.failf "expected 2 frames, got %d" (List.length frames)

let test_oversize_header () =
  let d = Wire.deframer () in
  let header = Bytes.of_string "\xff\xff\xff\xff" in
  Wire.feed d header 4;
  match Wire.next_frame d with
  | `Oversize n -> check_bool "oversize exceeds the cap" true (n > Wire.max_payload)
  | `Frame _ | `Await -> Alcotest.fail "a lying header must report Oversize"

(* A legal near-cap payload with no '=' (or a bad header) must not
   yield a decode error that echoes the whole input: the server puts
   that message in an error response's [r_detail], and an unencodable
   response would crash the event loop. *)
let test_decode_error_is_bounded () =
  let junk = String.make 900_000 'x' in
  let check_small what = function
    | Ok _ -> Alcotest.failf "%s: junk must not decode" what
    | Error msg ->
      check_bool
        (Printf.sprintf "%s: error message is bounded" what)
        true
        (String.length msg < 1024)
  in
  check_small "malformed line" (Wire.decode_request ("wlcq/1 count\n" ^ junk));
  check_small "bad header" (Wire.decode_request junk);
  check_small "unknown verb" (Wire.decode_request ("wlcq/1 " ^ junk))

(* encode_response is total: hostile-sized detail/id are clamped, an
   oversized value degrades to a stub error — never Invalid_argument
   (which would escape into the daemon's event loop). *)
let test_encode_response_total () =
  let base =
    {
      Wire.r_id = "";
      r_status = Wire.Ok_;
      r_value = "";
      r_detail = "";
      r_retry_after_ms = None;
    }
  in
  let redecode what r =
    let frame = Wire.encode_response r in
    check_bool
      (Printf.sprintf "%s: frame within cap" what)
      true
      (String.length frame <= 4 + Wire.max_payload);
    match deframe_one frame with
    | None -> Alcotest.failf "%s: frame must deframe" what
    | Some payload -> (
      match Wire.decode_response payload with
      | Ok r' -> r'
      | Error e -> Alcotest.failf "%s: must decode: %s" what e)
  in
  let huge = String.make (2 * Wire.max_payload) 'z' in
  let r = redecode "huge detail" { base with r_detail = huge } in
  check_bool "huge detail clamped" true (String.length r.Wire.r_detail < 8192);
  let r = redecode "huge id" { base with r_id = huge } in
  check_bool "huge id clamped" true (String.length r.Wire.r_id < 8192);
  let r = redecode "huge value" { base with r_value = huge } in
  check_bool "huge value dropped" true (String.equal r.Wire.r_value "");
  check_bool "huge value degrades to Error_" true (status_is Wire.Error_ r)

(* a near-cap frame trickled in small chunks must reassemble (and do
   so in amortized linear time — the deframer buffers in a Buffer.t,
   not by repeated string concatenation) *)
let test_deframer_trickle () =
  let req =
    {
      Wire.id = "trickle";
      deadline_ms = None;
      max_live_mb = None;
      op = Wire.Count { query = "q"; graph = String.make 200_000 'g' };
    }
  in
  let stream = Wire.encode_request req ^ Wire.encode_request req in
  let d = Wire.deframer () in
  let got = ref 0 in
  let n = String.length stream in
  let i = ref 0 in
  while !i < n do
    let len = min 37 (n - !i) in
    Wire.feed d (Bytes.of_string (String.sub stream !i len)) len;
    i := !i + len;
    (match Wire.next_frame d with
     | `Frame p ->
       (match Wire.decode_request p with
        | Ok r -> check_bool "trickled frame intact" true (request_eq r req)
        | Error e -> Alcotest.failf "trickled frame must decode: %s" e);
       incr got
     | `Await -> ()
     | `Oversize _ -> Alcotest.fail "oversize on a valid trickled stream")
  done;
  Alcotest.(check int) "both frames reassembled" 2 !got;
  Alcotest.(check int) "buffer fully consumed" 0 (Wire.buffered d)

(* ------------------------------------------------------------------ *)
(* In-process server harness                                           *)
(* ------------------------------------------------------------------ *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wlcq-test-%d-%d.sock" (Unix.getpid ()) !n)

let wait_for ?(timeout_s = 5.0) what f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

(* run [f] against a live in-process daemon; always drains it *)
let with_server ?(tweak = fun c -> c) f =
  let socket = fresh_socket () in
  let cfg = tweak (Server.default_config ~socket_path:socket) in
  let t = Server.create cfg in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run ~on_listening:(fun () -> Atomic.set ready true) t)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown t;
      Domain.join d;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      wait_for "server to listen" (fun () -> Atomic.get ready);
      f ~socket ~t)

let req ?deadline_ms ?max_live_mb ~id op =
  { Wire.id; deadline_ms; max_live_mb; op }

let expect_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* a raw socket speaking the framing by hand, for malformed frames *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let raw_receive ?(timeout_s = 5.0) fd =
  let d = Wire.deframer () in
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Wire.next_frame d with
    | `Frame p -> Wire.decode_response p
    | `Oversize _ -> Error "oversize reply"
    | `Await -> (
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then Error "timeout"
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> Error "timeout"
        | _ -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> Error "eof"
          | n ->
            Wire.feed d buf n;
            go ()
          | exception Unix.Unix_error _ -> Error "read error"))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* End-to-end                                                          *)
(* ------------------------------------------------------------------ *)

let hom_query = "(x1, x2) := exists y . E(x1, y) & E(x2, y)"
let edge_query = "(x1, x2) := E(x1, x2)"

let parse_query s = (Parser.parse_exn s).Parser.query

let parse_graph s =
  match Spec.parse s with
  | Ok g -> g
  | Error e -> Alcotest.failf "bad graph spec %s: %s" s e

let test_request_cycle () =
  with_server (fun ~socket ~t:_ ->
      let c = expect_ok "connect" (Client.connect ~socket ()) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          (* ping *)
          let r = expect_ok "ping" (Client.request c (req ~id:"p1" Wire.Ping)) in
          check_string "ping id echoed" "p1" r.Wire.r_id;
          check_bool "ping ok" true (status_is Wire.Ok_ r);
          check_string "ping value" "pong" r.Wire.r_value;
          (* decide: a 6-cycle and two triangles are 1-WL equivalent *)
          let r =
            expect_ok "decide"
              (Client.request c
                 (req ~id:"d1"
                    (Wire.Decide { k = 1; g1 = "cycle:6"; g2 = "twotriangles" })))
          in
          check_bool "decide ok" true (status_is Wire.Ok_ r);
          check_string "1-WL cannot split C6 from 2xC3" "true" r.Wire.r_value;
          (* count agrees with the in-process engine *)
          let expected =
            Cq.count_answers (parse_query hom_query) (parse_graph "cycle:5")
          in
          let r =
            expect_ok "count"
              (Client.request c
                 (req ~id:"c1" (Wire.Count { query = hom_query; graph = "cycle:5" })))
          in
          check_bool "count ok" true (status_is Wire.Ok_ r);
          check_string "count value" (string_of_int expected) r.Wire.r_value;
          (* batch: counts come back comma-joined, in request order *)
          let e1 =
            Cq.count_answers (parse_query edge_query) (parse_graph "cycle:4")
          in
          let e2 =
            Cq.count_answers (parse_query hom_query) (parse_graph "cycle:4")
          in
          let r =
            expect_ok "batch"
              (Client.request c
                 (req ~id:"b1"
                    (Wire.Count_batch
                       { queries = [ edge_query; hom_query ]; graph = "cycle:4" })))
          in
          check_bool "batch ok" true (status_is Wire.Ok_ r);
          check_string "batch values" (Printf.sprintf "%d,%d" e1 e2)
            r.Wire.r_value;
          (* treewidth *)
          let r =
            expect_ok "treewidth"
              (Client.request c
                 (req ~id:"t1" (Wire.Treewidth { graph = "clique:4" })))
          in
          check_bool "treewidth ok" true (status_is Wire.Ok_ r);
          check_string "tw(K4)" "3" r.Wire.r_value))

let test_malformed_keeps_connection () =
  with_server (fun ~socket ~t:_ ->
      let fd = raw_connect socket in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          (* a well-framed but non-protocol payload: structured error *)
          let junk = "this is not wlcq/1" in
          let frame =
            let n = String.length junk in
            let b = Bytes.create (4 + n) in
            Bytes.set b 0 '\x00';
            Bytes.set b 1 '\x00';
            Bytes.set b 2 '\x00';
            Bytes.set b 3 (Char.chr n);
            Bytes.blit_string junk 0 b 4 n;
            Bytes.to_string b
          in
          raw_send fd frame;
          (match raw_receive fd with
           | Ok r ->
             check_bool "malformed answered with error" true
               (status_is Wire.Error_ r);
             check_bool "error names the problem" true
               (String.length r.Wire.r_detail > 0)
           | Error e -> Alcotest.failf "expected an error reply, got %s" e);
          (* an unparseable but well-formed request line: same deal *)
          raw_send fd
            (Wire.encode_request
               (req ~id:"bad" (Wire.Treewidth { graph = "nonsense:99" })));
          (match raw_receive fd with
           | Ok r ->
             check_bool "bad spec answered with error" true
               (status_is Wire.Error_ r)
           | Error e -> Alcotest.failf "expected an error reply, got %s" e);
          (* a legal near-cap frame with no '=' anywhere: the decode
             error echoing it must be truncated, the error response
             must encode, and the daemon must live (a full echo would
             blow the frame cap and raise inside the event loop) *)
          let big = "wlcq/1 count\n" ^ String.make 900_000 'x' in
          let frame =
            let n = String.length big in
            let b = Bytes.create (4 + n) in
            Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
            Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
            Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
            Bytes.set b 3 (Char.chr (n land 0xff));
            Bytes.blit_string big 0 b 4 n;
            Bytes.to_string b
          in
          raw_send fd frame;
          (match raw_receive fd with
           | Ok r ->
             check_bool "near-cap junk answered with error" true
               (status_is Wire.Error_ r);
             check_bool "echoed excerpt is bounded" true
               (String.length r.Wire.r_detail < 1024)
           | Error e -> Alcotest.failf "expected an error reply, got %s" e);
          (* the connection survived all three *)
          raw_send fd (Wire.encode_request (req ~id:"after" Wire.Ping));
          match raw_receive fd with
          | Ok r ->
            check_string "connection still serves" "pong" r.Wire.r_value
          | Error e -> Alcotest.failf "connection must survive: %s" e))

let test_deadline_exhausts () =
  with_server (fun ~socket ~t:_ ->
      (* 1 ms against a graph the exact solver cannot finish that fast:
         a sound non-Ok_ outcome, and the daemon stays responsive *)
      let r =
        expect_ok "budgeted treewidth"
          (Client.call ~timeout_s:30.0 ~socket
             (req ~id:"dl" ~deadline_ms:1.0
                (Wire.Treewidth { graph = "gnp:40,0.4,3" })))
      in
      check_bool "1 ms deadline cannot stay exact" true
        (match r.Wire.r_status with
         | Wire.Degraded | Wire.Exhausted -> true
         | Wire.Ok_ | Wire.Error_ | Wire.Overloaded | Wire.Draining -> false);
      let r = expect_ok "ping after" (Client.call ~socket (req ~id:"p" Wire.Ping)) in
      check_string "still serving" "pong" r.Wire.r_value)

let test_overload_sheds () =
  with_server
    ~tweak:(fun c ->
      { c with Server.workers = 1; max_queue = 2; max_queue_per_client = 1 })
    (fun ~socket ~t:_ ->
      let c = expect_ok "connect" (Client.connect ~socket ()) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          (* a burst of slow requests against one worker and a
             one-deep per-client queue: the tail must be shed with a
             structured Overloaded carrying retry-after *)
          let slow i =
            req ~id:(Printf.sprintf "s%d" i) ~deadline_ms:300.0
              (Wire.Treewidth { graph = "gnp:40,0.4,9" })
          in
          for i = 1 to 6 do
            expect_ok "send" (Client.send c (slow i))
          done;
          let responses =
            List.init 6 (fun _ -> expect_ok "receive" (Client.receive c))
          in
          let shed =
            List.filter (fun r -> status_is Wire.Overloaded r) responses
          in
          check_bool "burst sheds at least one request" true
            (List.length shed >= 1);
          List.iter
            (fun r ->
               check_bool "shed reply carries retry-after" true
                 (match r.Wire.r_retry_after_ms with
                  | Some ms -> ms >= 0
                  | None -> false))
            shed;
          check_bool "some request was still served" true
            (List.exists
               (fun r ->
                  match r.Wire.r_status with
                  | Wire.Ok_ | Wire.Degraded | Wire.Exhausted -> true
                  | Wire.Error_ | Wire.Overloaded | Wire.Draining -> false)
               responses);
          (* once the burst is done, admission is open again *)
          let r = expect_ok "ping" (Client.request c (req ~id:"p" Wire.Ping)) in
          check_string "recovered" "pong" r.Wire.r_value))

let test_drain_rejects_and_exits () =
  let socket = fresh_socket () in
  let cfg =
    { (Server.default_config ~socket_path:socket) with Server.workers = 1 }
  in
  let t = Server.create cfg in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run ~on_listening:(fun () -> Atomic.set ready true) t)
  in
  wait_for "server to listen" (fun () -> Atomic.get ready);
  let c = expect_ok "connect" (Client.connect ~socket ()) in
  let r = expect_ok "ping" (Client.request c (req ~id:"p" Wire.Ping)) in
  check_string "served before drain" "pong" r.Wire.r_value;
  Server.shutdown t;
  (* the flag is polled every tick; give it a moment *)
  Unix.sleepf 0.3;
  (match Client.request c (req ~id:"late" Wire.Ping) with
   | Ok r ->
     check_bool "late request answered Draining" true
       (status_is Wire.Draining r)
   | Error _ ->
     (* equally acceptable: the daemon finished its drain and closed *)
     ());
  Client.close c;
  Domain.join d;
  check_bool "socket file removed after drain" false (Sys.file_exists socket);
  check_bool "not listening after drain" false (Server.listening t)

let test_idle_reap () =
  with_server
    ~tweak:(fun c -> { c with Server.idle_timeout_s = 0.05 })
    (fun ~socket ~t:_ ->
      let c = expect_ok "connect" (Client.connect ~socket ()) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let r = expect_ok "ping" (Client.request c (req ~id:"p" Wire.Ping)) in
          check_string "served while fresh" "pong" r.Wire.r_value;
          Unix.sleepf 0.5;
          (match Client.request c (req ~id:"q" Wire.Ping) with
           | Ok _ -> Alcotest.fail "idle session must have been reaped"
           | Error _ -> ());
          (* a fresh connection is welcome *)
          let r =
            expect_ok "reconnect" (Client.call ~socket (req ~id:"r" Wire.Ping))
          in
          check_string "fresh connection served" "pong" r.Wire.r_value))

let test_periodic_flush_writes_metrics () =
  let metrics = Filename.temp_file "wlcq-metrics" ".prom" in
  Sys.remove metrics;
  with_server
    ~tweak:(fun c ->
      { c with Server.flush_interval_s = 0.05; metrics_out = Some metrics })
    (fun ~socket ~t:_ ->
      let was_enabled = Obs.enabled () in
      Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) (fun () ->
          let r = expect_ok "ping" (Client.call ~socket (req ~id:"p" Wire.Ping)) in
          check_string "served" "pong" r.Wire.r_value;
          wait_for "periodic metrics flush" (fun () -> Sys.file_exists metrics);
          let ic = open_in metrics in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          Sys.remove metrics;
          check_bool "snapshot is non-empty" true (String.length body > 0);
          check_bool "snapshot is OpenMetrics" true
            (String.length body >= 2 && String.equal (String.sub body 0 2) "# ")))

(* ------------------------------------------------------------------ *)
(* Fault storm                                                         *)
(* ------------------------------------------------------------------ *)

let storm_sites =
  [ Fault.Accept_fail; Fault.Read_stall; Fault.Write_stall; Fault.Worker_raise ]

let storm_injected () =
  List.fold_left (fun acc s -> acc + Fault.injected s) 0 storm_sites

(* Hundreds of seeded faults — dropped accepts, stalled reads and
   writes, workers blowing up mid-request — interleaved with malformed
   frames, tight deadlines and abrupt disconnects.  The daemon must
   survive every one of them, answer a clean ping afterwards, and
   drain to a normal exit. *)
let test_fault_storm () =
  let socket = fresh_socket () in
  let cfg =
    {
      (Server.default_config ~socket_path:socket) with
      Server.workers = 1;
      idle_timeout_s = 0.5;
      write_timeout_s = 0.2;
      drain_timeout_s = 2.0;
      flush_interval_s = 0.0;
    }
  in
  let t = Server.create cfg in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run ~on_listening:(fun () -> Atomic.set ready true) t)
  in
  wait_for "server to listen" (fun () -> Atomic.get ready);
  Fault.arm ~seed:1234 ~rate:0.4 ~sites:storm_sites ();
  Fun.protect ~finally:Fault.disarm (fun () ->
      let rounds = ref 0 in
      while storm_injected () < 500 && !rounds < 3000 do
        incr rounds;
        let salvo i op = req ~id:(Printf.sprintf "r%d-%d" !rounds i) op in
        (* a short-lived client issuing a mixed burst; every call may
           fail (that is the point) but must fail as a value *)
        (match Client.connect ~timeout_s:0.5 ~socket () with
         | Error _ -> ()
         | Ok c ->
           let fire i op =
             match Client.request c (salvo i op) with
             | Ok _ | Error _ -> ()
           in
           fire 0 Wire.Ping;
           fire 1 (Wire.Count { query = edge_query; graph = "cycle:4" });
           (* leave one request un-received: an abrupt disconnect with
              work in flight *)
           (match Client.send c (salvo 2 Wire.Ping) with
            | Ok () | Error _ -> ());
           Client.close c);
        (* a deliberately hostile client: garbage frame, then vanish *)
        (match raw_connect socket with
         | fd ->
           (try raw_send fd "\x00\x00\x00\x05splat" with _ -> ());
           Unix.close fd
         | exception Unix.Unix_error _ -> ());
        (* a tight-deadline request, one-shot *)
        (match
           Client.call ~timeout_s:0.5 ~socket
             (req ~id:"tight" ~deadline_ms:1.0
                (Wire.Treewidth { graph = "gnp:30,0.3,7" }))
         with
         | Ok _ | Error _ -> ())
      done;
      let injected = storm_injected () in
      check_bool
        (Printf.sprintf "storm injected >= 500 faults (got %d)" injected)
        true (injected >= 500));
  (* faults off: the daemon must still be alive and serving *)
  let rec ping_until n =
    match Client.call ~timeout_s:2.0 ~socket (req ~id:"alive" Wire.Ping) with
    | Ok r -> r
    | Error e ->
      if n = 0 then Alcotest.failf "daemon unresponsive after the storm: %s" e
      else begin
        Unix.sleepf 0.05;
        ping_until (n - 1)
      end
  in
  let r = ping_until 20 in
  check_string "daemon survived the storm" "pong" r.Wire.r_value;
  check_bool "still listening" true (Server.listening t);
  (* clean SIGTERM-style drain: run returns, socket removed *)
  Server.shutdown t;
  Domain.join d;
  check_bool "socket removed after drain" false (Sys.file_exists socket);
  check_bool "drained" false (Server.listening t)

(* ------------------------------------------------------------------ *)

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Obs.set_enabled true;
  Alcotest.run "serve"
    [
      ( "wire",
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          prop_decode_total;
          prop_deframer_total;
          Alcotest.test_case "deframer reassembles split frames" `Quick
            test_deframer_reassembles;
          Alcotest.test_case "oversize header detected" `Quick
            test_oversize_header;
          Alcotest.test_case "decode errors bound the echoed input" `Quick
            test_decode_error_is_bounded;
          Alcotest.test_case "encode_response is total on hostile sizes" `Quick
            test_encode_response_total;
          Alcotest.test_case "near-cap frames reassemble from a trickle" `Quick
            test_deframer_trickle;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "request cycle over one connection" `Quick
            test_request_cycle;
          Alcotest.test_case "malformed frames keep the connection" `Quick
            test_malformed_keeps_connection;
          Alcotest.test_case "1 ms deadline degrades, daemon lives" `Quick
            test_deadline_exhausts;
          Alcotest.test_case "overload sheds with retry-after" `Quick
            test_overload_sheds;
          Alcotest.test_case "drain rejects late work and exits" `Quick
            test_drain_rejects_and_exits;
          Alcotest.test_case "idle sessions are reaped" `Quick test_idle_reap;
          Alcotest.test_case "periodic flush writes the snapshot" `Quick
            test_periodic_flush_writes_metrics;
        ] );
      ( "storm",
        [ Alcotest.test_case "500-fault storm, clean drain" `Slow
            test_fault_storm ] );
    ]
